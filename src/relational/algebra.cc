#include "relational/algebra.h"

#include <algorithm>
#include <unordered_map>

namespace psem {

Result<Relation> Project(const Relation& r, const std::vector<RelAttrId>& attrs,
                         const std::string& result_name) {
  std::vector<std::size_t> cols;
  cols.reserve(attrs.size());
  for (RelAttrId a : attrs) {
    std::size_t c = r.schema().ColumnOf(a);
    if (c == RelationSchema::kNpos) {
      return Status::InvalidArgument("projection attribute not in scheme");
    }
    cols.push_back(c);
  }
  Relation out(RelationSchema{result_name, attrs});
  for (const Tuple& t : r.rows()) {
    Tuple p;
    p.reserve(cols.size());
    for (std::size_t c : cols) p.push_back(t[c]);
    out.AddTuple(std::move(p));
  }
  return out;
}

Relation Select(const Relation& r, const std::function<bool(const Tuple&)>& pred,
                const std::string& result_name) {
  RelationSchema schema = r.schema();
  schema.name = result_name;
  Relation out(std::move(schema));
  for (const Tuple& t : r.rows()) {
    if (pred(t)) out.AddTuple(t);
  }
  return out;
}

Result<Relation> SelectEq(const Relation& r, RelAttrId attr, ValueId value,
                          const std::string& result_name) {
  std::size_t col = r.schema().ColumnOf(attr);
  if (col == RelationSchema::kNpos) {
    return Status::InvalidArgument("selection attribute not in scheme");
  }
  return Select(
      r, [col, value](const Tuple& t) { return t[col] == value; },
      result_name);
}

Relation NaturalJoin(const Relation& r, const Relation& s,
                     const std::string& result_name) {
  // Common attributes and the column maps.
  std::vector<std::pair<std::size_t, std::size_t>> common;  // (r col, s col)
  std::vector<std::size_t> s_extra_cols;
  for (std::size_t sc = 0; sc < s.arity(); ++sc) {
    std::size_t rc = r.schema().ColumnOf(s.schema().attrs[sc]);
    if (rc != RelationSchema::kNpos) {
      common.emplace_back(rc, sc);
    } else {
      s_extra_cols.push_back(sc);
    }
  }
  RelationSchema schema;
  schema.name = result_name;
  schema.attrs = r.schema().attrs;
  for (std::size_t sc : s_extra_cols) schema.attrs.push_back(s.schema().attrs[sc]);
  Relation out(std::move(schema));

  // Hash s on the common-attribute key.
  auto key_of = [&](const Tuple& t, bool from_s) {
    Tuple key;
    key.reserve(common.size());
    for (auto [rc, sc] : common) key.push_back(from_s ? t[sc] : t[rc]);
    return key;
  };
  auto hash_key = [](const Tuple& k) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (ValueId v : k) {
      h ^= v;
      h *= 0x100000001b3ull;
    }
    return h;
  };
  std::unordered_multimap<uint64_t, std::size_t> s_index;
  for (std::size_t i = 0; i < s.size(); ++i) {
    s_index.emplace(hash_key(key_of(s.row(i), true)), i);
  }
  for (const Tuple& rt : r.rows()) {
    Tuple rkey = key_of(rt, false);
    auto [lo, hi] = s_index.equal_range(hash_key(rkey));
    for (auto it = lo; it != hi; ++it) {
      const Tuple& st = s.row(it->second);
      if (key_of(st, true) != rkey) continue;
      Tuple joined = rt;
      for (std::size_t sc : s_extra_cols) joined.push_back(st[sc]);
      out.AddTuple(std::move(joined));
    }
  }
  return out;
}

namespace {
Status RequireSameScheme(const Relation& r, const Relation& s) {
  if (r.schema().attrs != s.schema().attrs) {
    return Status::InvalidArgument(
        "operands must have identical attribute lists");
  }
  return Status::OK();
}
}  // namespace

Result<Relation> Union(const Relation& r, const Relation& s,
                       const std::string& result_name) {
  PSEM_RETURN_IF_ERROR(RequireSameScheme(r, s));
  RelationSchema schema = r.schema();
  schema.name = result_name;
  Relation out(std::move(schema));
  for (const Tuple& t : r.rows()) out.AddTuple(t);
  for (const Tuple& t : s.rows()) out.AddTuple(t);
  return out;
}

Result<Relation> Difference(const Relation& r, const Relation& s,
                            const std::string& result_name) {
  PSEM_RETURN_IF_ERROR(RequireSameScheme(r, s));
  RelationSchema schema = r.schema();
  schema.name = result_name;
  Relation out(std::move(schema));
  for (const Tuple& t : r.rows()) {
    if (!s.Contains(t)) out.AddTuple(t);
  }
  return out;
}

Result<Relation> CartesianProduct(const Relation& r, const Relation& s,
                                  const std::string& result_name) {
  for (RelAttrId a : s.schema().attrs) {
    if (r.schema().Contains(a)) {
      return Status::InvalidArgument(
          "Cartesian product requires attribute-disjoint schemes");
    }
  }
  RelationSchema schema;
  schema.name = result_name;
  schema.attrs = r.schema().attrs;
  schema.attrs.insert(schema.attrs.end(), s.schema().attrs.begin(),
                      s.schema().attrs.end());
  Relation out(std::move(schema));
  for (const Tuple& rt : r.rows()) {
    for (const Tuple& st : s.rows()) {
      Tuple joined = rt;
      joined.insert(joined.end(), st.begin(), st.end());
      out.AddTuple(std::move(joined));
    }
  }
  return out;
}

Relation Rename(const Relation& r, const std::string& new_name,
                const std::vector<RelAttrId>& old_attrs,
                const std::vector<RelAttrId>& new_attrs) {
  RelationSchema schema = r.schema();
  schema.name = new_name;
  for (std::size_t i = 0; i < old_attrs.size() && i < new_attrs.size(); ++i) {
    for (auto& a : schema.attrs) {
      if (a == old_attrs[i]) a = new_attrs[i];
    }
  }
  Relation out(std::move(schema));
  for (const Tuple& t : r.rows()) out.AddTuple(t);
  return out;
}

}  // namespace psem
