#include "relational/relation.h"

#include <algorithm>
#include <cassert>

namespace psem {

uint64_t Relation::HashRow(const Tuple& t) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (ValueId v : t) {
    h ^= v;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool Relation::ContainsExact(const Tuple& t) const {
  auto [lo, hi] = index_.equal_range(HashRow(t));
  for (auto it = lo; it != hi; ++it) {
    if (rows_[it->second] == t) return true;
  }
  return false;
}

bool Relation::AddTuple(Tuple t) {
  assert(t.size() == schema_.arity());
  if (ContainsExact(t)) return false;
  uint64_t h = HashRow(t);
  index_.emplace(h, static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(t));
  return true;
}

bool Relation::AddRow(SymbolTable* symbols,
                      const std::vector<std::string>& values) {
  assert(values.size() == schema_.arity());
  Tuple t;
  t.reserve(values.size());
  for (const auto& v : values) t.push_back(symbols->Intern(v));
  return AddTuple(std::move(t));
}

Tuple Relation::Restrict(const Tuple& t, const AttrSet& x) const {
  Tuple out;
  x.ForEach([&](std::size_t attr) {
    std::size_t col = schema_.ColumnOf(static_cast<RelAttrId>(attr));
    assert(col != RelationSchema::kNpos);
    out.push_back(t[col]);
  });
  return out;
}

std::vector<ValueId> Relation::ColumnValues(RelAttrId attr) const {
  std::vector<ValueId> out;
  std::size_t col = schema_.ColumnOf(attr);
  if (col == RelationSchema::kNpos) return out;
  for (const Tuple& t : rows_) out.push_back(t[col]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Relation::ToString(const Universe& universe,
                               const SymbolTable& symbols) const {
  std::vector<std::size_t> widths(arity());
  std::vector<std::string> headers(arity());
  for (std::size_t c = 0; c < arity(); ++c) {
    headers[c] = universe.NameOf(schema_.attrs[c]);
    widths[c] = headers[c].size();
  }
  for (const Tuple& t : rows_) {
    for (std::size_t c = 0; c < arity(); ++c) {
      widths[c] = std::max(widths[c], symbols.NameOf(t[c]).size());
    }
  }
  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out = schema_.name + ":\n ";
  for (std::size_t c = 0; c < arity(); ++c) {
    out += " " + pad(headers[c], widths[c]);
  }
  out += "\n";
  for (const Tuple& t : rows_) {
    out += " ";
    for (std::size_t c = 0; c < arity(); ++c) {
      out += " " + pad(symbols.NameOf(t[c]), widths[c]);
    }
    out += "\n";
  }
  return out;
}

std::size_t Database::AddRelation(const std::string& name,
                                  const std::vector<std::string>& attr_names) {
  RelationSchema schema;
  schema.name = name;
  for (const auto& a : attr_names) schema.attrs.push_back(universe_.Intern(a));
  relations_.push_back(std::make_unique<Relation>(std::move(schema)));
  return relations_.size() - 1;
}

Result<std::size_t> Database::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i]->schema().name == name) return i;
  }
  return Status::NotFound("no relation named '" + name + "'");
}

AttrSet Database::AllAttributes() const {
  AttrSet all(universe_.size());
  for (const auto& r : relations_) {
    for (RelAttrId a : r->schema().attrs) all.Set(a);
  }
  return all;
}

std::vector<ValueId> Database::ColumnValues(RelAttrId attr) const {
  std::vector<ValueId> out;
  for (const auto& r : relations_) {
    auto col = r->ColumnValues(attr);
    out.insert(out.end(), col.begin(), col.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& r : relations_) {
    out += r->ToString(universe_, symbols_);
    out += "\n";
  }
  return out;
}

}  // namespace psem
