// Conventional database dependencies over relations (Section 2.1): the
// functional dependency X -> Y and the multivalued dependency X ->> Y.
// MVDs exist in this library solely to reproduce Theorem 5 (no set of PDs
// expresses even the simplest MVD) — they are the yardstick against which
// PD expressive power is measured in Section 4.2.

#ifndef PSEM_RELATIONAL_DEPENDENCY_H_
#define PSEM_RELATIONAL_DEPENDENCY_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"

namespace psem {

/// A functional dependency X -> Y over a universe. Both sides nonempty.
struct Fd {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const Fd&) const = default;

  /// Parses "A B -> C D" (names separated by spaces and/or commas),
  /// interning attributes into `universe`.
  static Result<Fd> Parse(Universe* universe, std::string_view text);

  std::string ToString(const Universe& universe) const;
};

/// A multivalued dependency X ->> Y over the full scheme of a relation.
struct Mvd {
  AttrSet lhs;
  AttrSet rhs;

  static Result<Mvd> Parse(Universe* universe, std::string_view text);
  std::string ToString(const Universe& universe) const;
};

/// r |= X -> Y (Section 2.1): tuples agreeing on X agree on Y. All
/// attributes of the FD must belong to r's scheme.
Result<bool> SatisfiesFd(const Relation& r, const Fd& fd);

/// r |= X ->> Y over scheme U: whenever t, h agree on X, the tuple taking
/// Y from t and Z = U - X - Y from h is also in r (the phi of Theorem 5
/// generalized from the single-attribute case).
Result<bool> SatisfiesMvd(const Relation& r, const Mvd& mvd);

/// Convenience: r satisfies every FD of the set.
Result<bool> SatisfiesAllFds(const Relation& r, const std::vector<Fd>& fds);

}  // namespace psem

#endif  // PSEM_RELATIONAL_DEPENDENCY_H_
