// The familiar relational-algebra operations (selection, projection,
// natural join, union, difference, Cartesian product, rename). The paper's
// conclusion stresses that partition semantics leave all of these intact —
// they are syntactic manipulations of syntactic objects — so the library
// ships a complete implementation over the same Relation type.

#ifndef PSEM_RELATIONAL_ALGEBRA_H_
#define PSEM_RELATIONAL_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace psem {

/// pi_X(r): projection onto the attributes of `attrs` (kept in the given
/// order; must all belong to r's scheme). Result is deduplicated.
Result<Relation> Project(const Relation& r, const std::vector<RelAttrId>& attrs,
                         const std::string& result_name = "projection");

/// sigma_pred(r): rows for which `pred` returns true.
Relation Select(const Relation& r, const std::function<bool(const Tuple&)>& pred,
                const std::string& result_name = "selection");

/// sigma_{A=v}(r).
Result<Relation> SelectEq(const Relation& r, RelAttrId attr, ValueId value,
                          const std::string& result_name = "selection");

/// r natural-join s: equality on all common attributes; result scheme is
/// r's attributes followed by s's non-common attributes.
Relation NaturalJoin(const Relation& r, const Relation& s,
                     const std::string& result_name = "join");

/// r U s: schemes must have identical attribute lists.
Result<Relation> Union(const Relation& r, const Relation& s,
                       const std::string& result_name = "union");

/// r - s: schemes must have identical attribute lists.
Result<Relation> Difference(const Relation& r, const Relation& s,
                            const std::string& result_name = "difference");

/// r x s: schemes must be attribute-disjoint.
Result<Relation> CartesianProduct(const Relation& r, const Relation& s,
                                  const std::string& result_name = "product");

/// Renames the relation and (optionally) attributes via parallel old/new
/// id lists.
Relation Rename(const Relation& r, const std::string& new_name,
                const std::vector<RelAttrId>& old_attrs = {},
                const std::vector<RelAttrId>& new_attrs = {});

}  // namespace psem

#endif  // PSEM_RELATIONAL_ALGEBRA_H_
