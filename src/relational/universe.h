// The attribute universe (the finite set of attributes of Section 2.1)
// and the symbol table (the countable set D of data symbols). Both are
// interners handing out dense 32-bit ids; attribute sets are DynamicBitsets
// sized to the universe.

#ifndef PSEM_RELATIONAL_UNIVERSE_H_
#define PSEM_RELATIONAL_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitset.h"
#include "util/interner.h"
#include "util/status.h"

namespace psem {

/// Dense id of an attribute in a Universe. (Distinct from the lattice
/// module's arena-local AttrId; core/ bridges the two by name.)
using RelAttrId = uint32_t;

/// Dense id of a data symbol in a SymbolTable.
using ValueId = uint32_t;

/// A set of attributes, represented as a bitset over the universe.
using AttrSet = DynamicBitset;

/// The finite attribute set of a database scheme.
class Universe {
 public:
  /// Interns an attribute name, returning its id.
  RelAttrId Intern(std::string_view name) { return names_.Intern(name); }

  /// Looks up an existing attribute.
  Result<RelAttrId> Require(std::string_view name) const {
    auto id = names_.Lookup(name);
    if (!id) {
      return Status::NotFound("unknown attribute '" + std::string(name) + "'");
    }
    return *id;
  }

  const std::string& NameOf(RelAttrId id) const { return names_.NameOf(id); }
  std::size_t size() const { return names_.size(); }

  /// An empty attribute set sized to the current universe.
  AttrSet EmptySet() const { return AttrSet(size()); }

  /// Interns every name and returns the set of their ids.
  AttrSet MakeSet(const std::vector<std::string>& names) {
    for (const auto& n : names) Intern(n);
    AttrSet s(size());
    for (const auto& n : names) s.Set(*names_.Lookup(n));
    return s;
  }

  /// Renders an attribute set as "A B C" in id order.
  std::string SetToString(const AttrSet& s) const {
    std::string out;
    s.ForEach([&](std::size_t i) {
      if (!out.empty()) out += " ";
      out += NameOf(static_cast<RelAttrId>(i));
    });
    return out;
  }

 private:
  StringInterner names_;
};

/// The data-symbol set D of Section 2.1.
class SymbolTable {
 public:
  ValueId Intern(std::string_view s) { return syms_.Intern(s); }
  const std::string& NameOf(ValueId v) const { return syms_.NameOf(v); }
  std::size_t size() const { return syms_.size(); }

  /// Mints a symbol guaranteed not to collide with user symbols; used for
  /// padding canonical relations (Definition 6's i_A symbols) and test
  /// data.
  ValueId Fresh(std::string_view prefix = "#") {
    std::string name = std::string(prefix) + std::to_string(fresh_counter_++);
    while (syms_.Lookup(name)) {
      name = std::string(prefix) + std::to_string(fresh_counter_++);
    }
    return syms_.Intern(name);
  }

 private:
  StringInterner syms_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace psem

#endif  // PSEM_RELATIONAL_UNIVERSE_H_
