#include "relational/dependency.h"

#include <unordered_map>

#include "util/strings.h"

namespace psem {

namespace {

Result<std::pair<AttrSet, AttrSet>> ParseSides(Universe* universe,
                                               std::string_view text,
                                               std::string_view arrow) {
  std::size_t pos = text.find(arrow);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("dependency must contain '" +
                                   std::string(arrow) + "': '" +
                                   std::string(text) + "'");
  }
  auto parse_side = [&](std::string_view side) -> Result<AttrSet> {
    std::string normalized(side);
    for (char& c : normalized) {
      if (c == ',') c = ' ';
    }
    std::vector<std::string> names = SplitAndStrip(normalized, ' ');
    if (names.empty()) {
      return Status::InvalidArgument("dependency side must be nonempty");
    }
    for (const auto& n : names) {
      if (!IsIdentifier(n)) {
        return Status::InvalidArgument("bad attribute name '" + n + "'");
      }
    }
    return universe->MakeSet(names);
  };
  PSEM_ASSIGN_OR_RETURN(AttrSet lhs, parse_side(text.substr(0, pos)));
  PSEM_ASSIGN_OR_RETURN(AttrSet rhs, parse_side(text.substr(pos + arrow.size())));
  // MakeSet may have grown the universe while parsing rhs; resize lhs.
  if (lhs.size() < universe->size()) {
    AttrSet grown(universe->size());
    lhs.ForEach([&](std::size_t i) { grown.Set(i); });
    lhs = grown;
  }
  return std::make_pair(std::move(lhs), std::move(rhs));
}

uint64_t HashKey(const Tuple& k) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (ValueId v : k) {
    h ^= v;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Result<Fd> Fd::Parse(Universe* universe, std::string_view text) {
  // Guard against parsing an MVD as an FD.
  if (text.find("->>") != std::string_view::npos) {
    return Status::InvalidArgument("'->>' is an MVD; use Mvd::Parse");
  }
  PSEM_ASSIGN_OR_RETURN(auto sides, ParseSides(universe, text, "->"));
  return Fd{std::move(sides.first), std::move(sides.second)};
}

std::string Fd::ToString(const Universe& universe) const {
  return universe.SetToString(lhs) + " -> " + universe.SetToString(rhs);
}

Result<Mvd> Mvd::Parse(Universe* universe, std::string_view text) {
  PSEM_ASSIGN_OR_RETURN(auto sides, ParseSides(universe, text, "->>"));
  return Mvd{std::move(sides.first), std::move(sides.second)};
}

std::string Mvd::ToString(const Universe& universe) const {
  return universe.SetToString(lhs) + " ->> " + universe.SetToString(rhs);
}

Result<bool> SatisfiesFd(const Relation& r, const Fd& fd) {
  AttrSet scheme_attrs = r.schema().ToAttrSet(fd.lhs.size());
  if (!fd.lhs.IsSubsetOf(scheme_attrs) || !fd.rhs.IsSubsetOf(scheme_attrs)) {
    return Status::InvalidArgument("FD attributes not all in relation scheme");
  }
  // Group rows by X-projection; all rows in a group must share the
  // Y-projection.
  std::unordered_multimap<uint64_t, std::size_t> groups;
  for (std::size_t i = 0; i < r.size(); ++i) {
    Tuple x = r.Restrict(r.row(i), fd.lhs);
    Tuple y = r.Restrict(r.row(i), fd.rhs);
    uint64_t h = HashKey(x);
    auto [lo, hi] = groups.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const Tuple& other = r.row(it->second);
      if (r.Restrict(other, fd.lhs) == x && r.Restrict(other, fd.rhs) != y) {
        return false;
      }
    }
    groups.emplace(h, i);
  }
  return true;
}

Result<bool> SatisfiesMvd(const Relation& r, const Mvd& mvd) {
  AttrSet scheme_attrs = r.schema().ToAttrSet(mvd.lhs.size());
  if (!mvd.lhs.IsSubsetOf(scheme_attrs) || !mvd.rhs.IsSubsetOf(scheme_attrs)) {
    return Status::InvalidArgument("MVD attributes not all in relation scheme");
  }
  AttrSet z = scheme_attrs;
  z.SubtractWith(mvd.lhs);
  z.SubtractWith(mvd.rhs);
  AttrSet y = mvd.rhs;
  y.SubtractWith(mvd.lhs);  // WLOG make Y disjoint from X.

  // For each X-group, the set of (Y, Z) combinations must be a full cross
  // product of the group's Y-projections and Z-projections.
  struct Group {
    std::vector<Tuple> ys;
    std::vector<Tuple> zs;
    std::vector<std::pair<Tuple, Tuple>> pairs;
  };
  std::unordered_map<uint64_t, std::vector<std::pair<Tuple, Group>>> by_x;
  for (std::size_t i = 0; i < r.size(); ++i) {
    Tuple xk = r.Restrict(r.row(i), mvd.lhs);
    Tuple yk = r.Restrict(r.row(i), y);
    Tuple zk = r.Restrict(r.row(i), z);
    auto& bucket = by_x[HashKey(xk)];
    Group* g = nullptr;
    for (auto& [key, grp] : bucket) {
      if (key == xk) {
        g = &grp;
        break;
      }
    }
    if (g == nullptr) {
      bucket.emplace_back(xk, Group{});
      g = &bucket.back().second;
    }
    auto push_unique = [](std::vector<Tuple>* v, const Tuple& t) {
      for (const Tuple& u : *v) {
        if (u == t) return;
      }
      v->push_back(t);
    };
    push_unique(&g->ys, yk);
    push_unique(&g->zs, zk);
    bool seen = false;
    for (const auto& [py, pz] : g->pairs) {
      if (py == yk && pz == zk) {
        seen = true;
        break;
      }
    }
    if (!seen) g->pairs.emplace_back(yk, zk);
  }
  for (const auto& [h, bucket] : by_x) {
    (void)h;
    for (const auto& [key, g] : bucket) {
      (void)key;
      if (g.pairs.size() != g.ys.size() * g.zs.size()) return false;
    }
  }
  return true;
}

Result<bool> SatisfiesAllFds(const Relation& r, const std::vector<Fd>& fds) {
  for (const Fd& fd : fds) {
    PSEM_ASSIGN_OR_RETURN(bool ok, SatisfiesFd(r, fd));
    if (!ok) return false;
  }
  return true;
}

}  // namespace psem
