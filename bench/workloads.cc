#include "workloads.h"

namespace psem {
namespace bench {

Rng MakeBenchRng(uint64_t stream) {
  // Offset each stream by a large odd constant so streams 0,1,2,... land
  // in unrelated regions of the splitmix64 sequence.
  return Rng(kBenchSeed + stream * 0x9e3779b97f4a7c15ull);
}

ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops) {
  if (ops == 0) {
    return arena->Attr("A" + std::to_string(rng->Below(num_attrs)));
  }
  int left = static_cast<int>(rng->Below(static_cast<uint64_t>(ops)));
  ExprId l = RandomExpr(arena, rng, num_attrs, left);
  ExprId r = RandomExpr(arena, rng, num_attrs, ops - 1 - left);
  return rng->Chance(1, 2) ? arena->Product(l, r) : arena->Sum(l, r);
}

std::vector<Pd> RandomTheory(ExprArena* arena, Rng* rng, int num_attrs,
                             int num_pds, int max_ops) {
  std::vector<Pd> pds;
  pds.reserve(num_pds);
  for (int i = 0; i < num_pds; ++i) {
    ExprId l = RandomExpr(arena, rng, num_attrs,
                          1 + static_cast<int>(rng->Below(max_ops)));
    ExprId r = RandomExpr(arena, rng, num_attrs,
                          1 + static_cast<int>(rng->Below(max_ops)));
    pds.push_back(rng->Chance(1, 2) ? Pd::Eq(l, r) : Pd::Leq(l, r));
  }
  return pds;
}

std::vector<Pd> RandomQueries(ExprArena* arena, Rng* rng, int num_attrs,
                              int num_queries, int max_ops) {
  std::vector<Pd> queries;
  queries.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    ExprId l = RandomExpr(arena, rng, num_attrs,
                          1 + static_cast<int>(rng->Below(max_ops)));
    ExprId r = RandomExpr(arena, rng, num_attrs,
                          1 + static_cast<int>(rng->Below(max_ops)));
    queries.push_back(rng->Chance(1, 3) ? Pd::Eq(l, r) : Pd::Leq(l, r));
  }
  return queries;
}

std::vector<Fd> RandomFds(Universe* universe, Rng* rng, int num_attrs,
                          int num_fds, int max_lhs) {
  for (int i = 0; i < num_attrs; ++i) {
    universe->Intern("A" + std::to_string(i));
  }
  std::vector<Fd> fds;
  const std::size_t n = universe->size();
  for (int i = 0; i < num_fds; ++i) {
    AttrSet lhs(n), rhs(n);
    int lhs_size = 1 + static_cast<int>(rng->Below(max_lhs));
    for (int k = 0; k < lhs_size; ++k) {
      lhs.Set(*universe->Require("A" + std::to_string(rng->Below(num_attrs))));
    }
    rhs.Set(*universe->Require("A" + std::to_string(rng->Below(num_attrs))));
    fds.push_back(Fd{std::move(lhs), std::move(rhs)});
  }
  return fds;
}

void RandomFragmentedDatabase(Database* db, Rng* rng, int num_attrs,
                              int num_relations, int rows_per_relation,
                              int symbols_per_attr) {
  for (int r = 0; r < num_relations; ++r) {
    int a = static_cast<int>(rng->Below(num_attrs));
    int b = static_cast<int>(rng->Below(num_attrs));
    if (b == a) b = (a + 1) % num_attrs;
    std::size_t ri = db->AddRelation(
        "R" + std::to_string(r),
        {"A" + std::to_string(a), "A" + std::to_string(b)});
    for (int i = 0; i < rows_per_relation; ++i) {
      db->relation(ri).AddRow(
          &db->symbols(),
          {"v" + std::to_string(a) + "_" +
               std::to_string(rng->Below(symbols_per_attr)),
           "v" + std::to_string(b) + "_" +
               std::to_string(rng->Below(symbols_per_attr))});
    }
  }
}

std::vector<Pd> ChainTheory(ExprArena* arena, int n) {
  std::vector<Pd> pds;
  for (int i = 0; i + 1 < n; ++i) {
    pds.push_back(Pd::Leq(arena->Attr("A" + std::to_string(i)),
                          arena->Attr("A" + std::to_string(i + 1))));
  }
  return pds;
}

ExprId DeepExpr(ExprArena* arena, int depth, int num_attrs, bool start_sum) {
  if (depth == 0) {
    return arena->Attr("A" + std::to_string(depth % num_attrs));
  }
  // Children use distinct attribute phases so the tree does not collapse
  // under hash-consing.
  ExprId l = DeepExpr(arena, depth - 1, num_attrs, !start_sum);
  ExprId r = arena->Attr("A" + std::to_string(depth % num_attrs));
  return start_sum ? arena->Sum(l, r) : arena->Product(l, r);
}

}  // namespace bench
}  // namespace psem
