// Extension-layer benchmarks: proof extraction vs the bare verdict,
// bounded model finding, identity-preserving simplification, the RR
// rewrite search (Lemma 9.1 made executable), Armstrong relation
// construction, and the semilattice word problem — the costs a user pays
// for explanations and certificates on top of Algorithm ALG.

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

void BM_ProofExtractionChain(benchmark::State& state) {
  ExprArena arena;
  int n = static_cast<int>(state.range(0));
  std::vector<Pd> e = ChainTheory(&arena, n);
  ExprId from = arena.Attr("A0");
  ExprId to = arena.Attr("A" + std::to_string(n - 1));
  for (auto _ : state) {
    ProvenanceEngine prover(&arena, e);
    auto proof = prover.ProveLeq(from, to);
    benchmark::DoNotOptimize(proof.ok());
    if (proof.ok()) state.counters["proof_steps"] =
        static_cast<double>(proof->steps.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ProofExtractionChain)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Complexity();

void BM_VerdictOnlyChain(benchmark::State& state) {
  ExprArena arena;
  int n = static_cast<int>(state.range(0));
  std::vector<Pd> e = ChainTheory(&arena, n);
  ExprId from = arena.Attr("A0");
  ExprId to = arena.Attr("A" + std::to_string(n - 1));
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, e);
    benchmark::DoNotOptimize(engine.ImpliesLeq(from, to));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_VerdictOnlyChain)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_ModelFinderCounterexample(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B")};
  Pd query = *arena.ParsePd("B <= A");
  std::size_t max_pop = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCounterModel(arena, e, query, max_pop));
  }
}
BENCHMARK(BM_ModelFinderCounterexample)->Arg(2)->Arg(3)->Arg(4);

void BM_ModelFinderExhaustiveFailure(benchmark::State& state) {
  // Implied query: the finder must exhaust the whole space.
  ExprArena arena;
  std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("B <= C")};
  Pd query = *arena.ParsePd("A <= C");
  std::size_t max_pop = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCounterModel(arena, e, query, max_pop));
  }
}
BENCHMARK(BM_ModelFinderExhaustiveFailure)->Arg(2)->Arg(3)->Arg(4);

void BM_SimplifyRandomExpr(benchmark::State& state) {
  ExprArena arena;
  Rng rng = MakeBenchRng(11);
  int ops = static_cast<int>(state.range(0));
  std::vector<ExprId> exprs;
  for (int i = 0; i < 32; ++i) {
    exprs.push_back(RandomExpr(&arena, &rng, 3, ops));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimplifyExpr(&arena, exprs[i++ % exprs.size()]));
  }
  state.SetComplexityN(ops);
}
BENCHMARK(BM_SimplifyRandomExpr)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Complexity();

void BM_RewriteSearchProjection(benchmark::State& state) {
  for (auto _ : state) {
    ExprArena arena;
    std::vector<Pd> e = {*arena.ParsePd("A <= B"), *arena.ParsePd("A <= C")};
    auto seq = FindRewriteSequence(&arena, *arena.Parse("A"),
                                   *arena.Parse("B*C"), e);
    benchmark::DoNotOptimize(seq.ok());
  }
}
BENCHMARK(BM_RewriteSearchProjection)->Unit(benchmark::kMicrosecond);

void BM_ArmstrongConstruction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Rng rng = MakeBenchRng(12);
  FdTheory t(&u);
  auto fds = RandomFds(&u, &rng, n, n, 2);
  for (const Fd& fd : fds) t.Add(fd);
  AttrSet scheme(u.size());
  scheme.SetAll();
  for (auto _ : state) {
    Database db;
    auto r = BuildArmstrongRelation(t, scheme, &db);
    benchmark::DoNotOptimize(r.ok());
    if (r.ok()) state.counters["rows"] =
        static_cast<double>(db.relation(*r).size());
  }
}
BENCHMARK(BM_ArmstrongConstruction)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_SemigroupNormalForm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Rng rng = MakeBenchRng(13);
  auto fds = RandomFds(&u, &rng, n, 2 * n, 2);
  IcSemigroupTheory sg = IcSemigroupTheory::FromFds(&u, fds);
  AttrSet x(u.size());
  x.Set(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sg.NormalForm(x));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SemigroupNormalForm)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_BcnfDecomposition(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Universe u;
  Rng rng = MakeBenchRng(14);
  FdTheory t(&u);
  for (const Fd& fd : RandomFds(&u, &rng, n, n, 2)) t.Add(fd);
  AttrSet scheme(u.size());
  scheme.SetAll();
  for (auto _ : state) {
    auto parts = DecomposeBcnf(t, scheme);
    benchmark::DoNotOptimize(parts.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BcnfDecomposition)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_FdDiscovery(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  Database db;
  Rng rng = MakeBenchRng(15);
  std::size_t ri = db.AddRelation("R", {"A", "B", "C", "D", "E"});
  for (int i = 0; i < rows; ++i) {
    db.relation(ri).AddRow(&db.symbols(),
                           {"a" + std::to_string(rng.Below(rows / 4 + 2)),
                            "b" + std::to_string(rng.Below(4)),
                            "c" + std::to_string(rng.Below(4)),
                            "d" + std::to_string(rng.Below(8)),
                            "e" + std::to_string(rng.Below(2))});
  }
  FdDiscoveryOptions options;
  options.max_lhs_size = 3;
  for (auto _ : state) {
    auto fds = DiscoverFds(db, db.relation(ri), options);
    benchmark::DoNotOptimize(fds.ok());
    if (fds.ok()) state.counters["fds"] = static_cast<double>(fds->size());
  }
  state.SetComplexityN(rows);
}
BENCHMARK(BM_FdDiscovery)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_PdPatternDiscovery(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  Graph g = Graph::Random(n, 2 * n, 16);
  std::size_t ri = EncodeGraphRelation(g, &db);
  for (auto _ : state) {
    auto patterns = DiscoverPdPatterns(db, db.relation(ri));
    benchmark::DoNotOptimize(patterns.ok());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PdPatternDiscovery)->Arg(32)->Arg(128)->Arg(512)->Complexity();

}  // namespace

