// FIG3: executable reproduction of Figure 3 / Theorem 11 (Section 6.1).
//
// The paper's figure shows the reduction of NOT-ALL-EQUAL-3SAT to CAD
// consistency for n = 4 variables and the clause c1 = x1 v x2 v (not x3):
// relations R0[A A1..An] with two tuples and R1[A A4 B1..B4] with one
// tuple, plus the FPDs B_i -> A_i and B1 B2 B3 -> A. This binary builds
// that instance (with the polarity-mirror padding described in cad.h),
// prints it, runs the exact CAD solver, decodes the NAE assignment, and
// then flips the formula to an unsatisfiable one to confirm the reduction
// detects it.

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {
int failures = 0;
void Row(const char* claim, bool expected, bool measured) {
  bool ok = expected == measured;
  if (!ok) ++failures;
  std::printf("  %-56s paper: %-5s measured: %-5s %s\n", claim,
              expected ? "true" : "false", measured ? "true" : "false",
              ok ? "OK" : "MISMATCH");
}
}  // namespace

int main() {
  std::printf("== FIG3: Figure 3 / Theorem 11 reproduction ==\n\n");

  // The figure's formula.
  NaeFormula f;
  f.num_vars = 4;
  f.clauses.push_back(NaeClause{{0, true}, {1, true}, {2, false}});
  std::printf("formula: c1 = x1 v x2 v (not x3) over x1..x4\n\n");

  Database db;
  CadReduction red = *ReduceNaeToCad(f, &db);
  std::printf("reduced database (%zu relations; mirrors g_i = x_i added as "
              "clauses):\n",
              db.num_relations());
  std::printf("%s", db.relation(0).ToString(db.universe(), db.symbols()).c_str());
  std::printf("%s\n", db.relation(1).ToString(db.universe(), db.symbols()).c_str());
  std::printf("FDs (%zu):\n", red.fds.size());
  for (const Fd& fd : red.fds) {
    std::printf("  %s\n", fd.ToString(db.universe()).c_str());
  }

  bool nae_sat = NaeBruteForce(red.padded).has_value();
  Row("\nthe padded formula is NAE-satisfiable", true, nae_sat);

  CadResult res = CadConsistent(db, red.fds);
  Row("the instance is CAD-consistent (Theorem 6b search)", true,
      res.consistent);
  std::printf("  [exact solver explored %llu nodes]\n",
              static_cast<unsigned long long>(res.nodes));

  if (res.consistent) {
    auto assignment = *DecodeCadAssignment(db, red, res);
    std::printf("  decoded assignment:");
    for (uint32_t i = 0; i < f.num_vars; ++i) {
      std::printf(" x%u=%s", i + 1, assignment[i] ? "T" : "F");
    }
    std::printf("\n");
    Row("decoded assignment NAE-satisfies the formula", true,
        red.padded.Satisfied(assignment));
  }

  // The unsatisfiable direction: (x1 v x2) NAE + (x1 v -x2) NAE forces
  // x1 != x2 and x1 == x2.
  std::printf("\nunsatisfiable control: x1 v x2 ; x1 v (not x2)\n");
  NaeFormula g = NaeFormula::Parse("1 2; 1 -2");
  Row("control formula is NAE-satisfiable", false,
      NaeBruteForce(g).has_value());
  Database db2;
  CadReduction red2 = *ReduceNaeToCad(g, &db2);
  CadResult res2 = CadConsistent(db2, red2.fds);
  Row("control instance is CAD-consistent", false, res2.consistent);
  // Open world remains consistent: the NP-hardness is specific to CAD.
  Row("control instance is open-world consistent", true,
      WeakInstanceConsistent(db2, red2.fds));

  std::printf("\n%s\n", failures == 0 ? "FIG3: all claims reproduced."
                                      : "FIG3: MISMATCHES FOUND!");
  return failures == 0 ? 0 : 1;
}
