// Durability PR: warm recovery (snapshot decode + RestoreEngineState)
// versus cold recompute (closure from scratch) versus journal-only
// replay, for the same theory. All three are Theta(arcs) on the chain
// worst case — restore pays checksum + full-state validation + the
// down_-transpose rebuild, which is the price of never trusting on-disk
// bytes — so the committed baseline gates BOTH paths: a regression in
// the dense closure kernels shows up in cold, a regression in
// decode/validate shows up in warm, and the two must stay within the
// same constant factor of each other (warm recovery must never be
// asymptotically worse than recomputing).
//
// Workload: ChainTheory(n) (A0 <= A1 <= ... <= A(n-1)), whose closure
// holds ~n^2/2 derived arcs — the worst case for recompute and the
// densest realistic snapshot per vertex.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

std::string SnapshotPathFor(int n) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  return dir + "/psem_bench_recovery_" + std::to_string(n) + ".snap";
}

// Builds the chain theory, forces the closure, and answers the
// end-to-end query (A0 <= A(n-1), implied through n-1 hops).
void BM_ColdRecompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uint64_t arcs = 0;
  for (auto _ : state) {
    ExprArena arena;
    std::vector<Pd> pds = ChainTheory(&arena, n);
    PdImplicationEngine engine(&arena, pds);
    Pd query = Pd::Leq(arena.Attr("A0"),
                       arena.Attr("A" + std::to_string(n - 1)));
    bool implied = engine.Implies(query);
    if (!implied) state.SkipWithError("chain query must be implied");
    benchmark::DoNotOptimize(implied);
    arcs = engine.stats().num_arcs;
  }
  state.counters["arcs"] = static_cast<double>(arcs);
  state.SetComplexityN(n);
}
BENCHMARK(BM_ColdRecompute)->Arg(1024)->Arg(4096)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Recovers the same closed engine from a snapshot written once during
// setup: read + checksum + decode + RestoreEngineState + the (now O(1))
// query. No journal — this isolates the snapshot restore path.
void BM_WarmRecovery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string path = SnapshotPathFor(n);
  {
    ExprArena arena;
    std::vector<Pd> pds = ChainTheory(&arena, n);
    PdImplicationEngine engine(&arena, pds);
    engine.Implies(Pd::Leq(arena.Attr("A0"),
                           arena.Attr("A" + std::to_string(n - 1))));
    auto bytes = EncodeSnapshot(engine, TheoryFingerprint(arena, pds));
    if (!bytes.ok() || !AtomicWriteFile(path, *bytes).ok()) {
      state.SkipWithError("snapshot setup failed");
      return;
    }
  }
  uint64_t restored_arcs = 0;
  for (auto _ : state) {
    ExprArena arena;
    std::vector<Pd> base = ChainTheory(&arena, n);
    DurabilityOptions opts;
    opts.snapshot_path = path;
    auto durable = DurablePdEngine::Recover(&arena, std::move(base),
                                            std::move(opts));
    if (!durable.ok() ||
        durable->recovery().tier != RecoveryTier::kCleanRestore) {
      state.SkipWithError("recovery did not restore the snapshot");
      break;
    }
    Pd query = Pd::Leq(arena.Attr("A0"),
                       arena.Attr("A" + std::to_string(n - 1)));
    bool implied = durable->engine().Implies(query);
    if (!implied) state.SkipWithError("recovered closure lost the chain");
    benchmark::DoNotOptimize(implied);
    restored_arcs = durable->recovery().restored_arcs;
  }
  std::remove(path.c_str());
  state.counters["arcs"] = static_cast<double>(restored_arcs);
  state.SetComplexityN(n);
}
BENCHMARK(BM_WarmRecovery)->Arg(1024)->Arg(4096)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->Complexity();

// Journal-only recovery at the same sizes: replays every chain link
// through the incremental AddConstraint path. Sits between cold and
// warm — the cost of having journaled but never checkpointed.
void BM_JournalReplayRecovery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string path = SnapshotPathFor(n) + ".wal";
  std::remove(path.c_str());
  {
    ExprArena arena;
    std::vector<Pd> pds = ChainTheory(&arena, n);
    auto journal = Journal::Open(path);
    if (!journal.ok()) {
      state.SkipWithError("journal setup failed");
      return;
    }
    for (const Pd& pd : pds) {
      if (!journal->Append(arena.ToString(pd)).ok()) {
        state.SkipWithError("journal append failed");
        return;
      }
    }
  }
  for (auto _ : state) {
    ExprArena arena;
    DurabilityOptions opts;
    opts.journal_path = path;
    auto durable = DurablePdEngine::Recover(&arena, {}, std::move(opts));
    if (!durable.ok() ||
        durable->recovery().journal_replayed_new !=
            static_cast<std::size_t>(n - 1)) {
      state.SkipWithError("journal replay incomplete");
      break;
    }
    Pd query = Pd::Leq(arena.Attr("A0"),
                       arena.Attr("A" + std::to_string(n - 1)));
    bool implied = durable->engine().Implies(query);
    if (!implied) state.SkipWithError("replayed closure lost the chain");
    benchmark::DoNotOptimize(implied);
  }
  std::remove(path.c_str());
  state.SetComplexityN(n);
}
BENCHMARK(BM_JournalReplayRecovery)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace
