// THM4: executable check of Theorem 4's phenomenon — the PD C = A + B
// expresses undirected connectivity, which no first-order sentence set
// over a ternary relation can. The theorem itself is a compactness
// argument; what an implementation can demonstrate is its engine: the
// family of chain relations r_i from the proof, where ever-longer chains
// keep C-equality witnessed only by ever-longer A/B paths, plus the
// end-to-end fact that partition semantics compute exactly the connected
// components on random graphs.

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {
int failures = 0;
void Row(const std::string& claim, bool expected, bool measured) {
  bool ok = expected == measured;
  if (!ok) ++failures;
  std::printf("  %-58s paper: %-5s measured: %-5s %s\n", claim.c_str(),
              expected ? "true" : "false", measured ? "true" : "false",
              ok ? "OK" : "MISMATCH");
}

// The proof's chain relation r_i (i even): tuples 1.2.0, 3.2.0, 3.4.0,
// 5.4.0, ..., i+1.i.0, i+1.i+2.0 — a single A/B-chain, all C = 0.
void BuildChainRelation(Database* db, int i, std::size_t* ri) {
  *ri = db->AddRelation("r" + std::to_string(i), {"A", "B", "C"});
  Relation& r = db->relation(*ri);
  auto add = [&](int a, int b) {
    r.AddRow(&db->symbols(),
             {"n" + std::to_string(a), "n" + std::to_string(b), "zero"});
  };
  // 1.2, 3.2, 3.4, 5.4, ..., (i+1).i, (i+1).(i+2).
  for (int k = 1; k < i; k += 2) {
    add(k, k + 1);
    add(k + 2, k + 1);
  }
  add(i + 1, i + 2);
}

}  // namespace

int main() {
  std::printf("== THM4: connectivity is a PD, not a first-order sentence ==\n\n");

  ExprArena arena;
  Pd pd = *arena.ParsePd("C = A+B");

  // The proof's r_i family: each satisfies C = A + B, and the only chain
  // connecting the endpoint tuples has length i (the phi_k formulas of
  // the compactness argument distinguish them — no finite k works for
  // all i).
  std::printf("chain family r_i (the compactness argument's witnesses):\n");
  for (int i : {2, 4, 8, 16, 32}) {
    Database db;
    std::size_t ri;
    BuildChainRelation(&db, i, &ri);
    bool sat = *RelationSatisfiesPd(db, db.relation(ri), arena, pd);
    Row("r_" + std::to_string(i) + " |= C = A+B  (" +
            std::to_string(db.relation(ri).size()) + " tuples)",
        true, sat);
    // Break the chain in the middle: C = A+B must fail, because two
    // now-disconnected tuples still share C.
    Database broken;
    std::size_t bi = broken.AddRelation("b", {"A", "B", "C"});
    const Relation& orig = db.relation(ri);
    for (std::size_t k = 0; k < orig.size(); ++k) {
      if (k == orig.size() / 2) continue;  // remove one chain link
      broken.relation(bi).AddRow(
          &broken.symbols(), {db.symbols().NameOf(orig.row(k)[0]),
                              db.symbols().NameOf(orig.row(k)[1]),
                              db.symbols().NameOf(orig.row(k)[2])});
    }
    bool broken_sat =
        *RelationSatisfiesPd(broken, broken.relation(bi), arena, pd);
    Row("r_" + std::to_string(i) + " with one link removed |= C = A+B",
        false, broken_sat);
  }

  // Components on random graphs: partition semantics vs union-find.
  std::printf("\nrandom graphs: components via pi_A + pi_B vs union-find:\n");
  bool all_match = true;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Database db;
    Graph g = Graph::Random(40, 30, seed);
    std::size_t ri = EncodeGraphRelation(g, &db);
    auto pd_comp = *ComponentsViaPdSemantics(db, ri, g.num_vertices());
    all_match &= SameComponents(pd_comp, g.ComponentsUnionFind());
  }
  Row("PD components == union-find components (8 random graphs)", true,
      all_match);

  // The weaker C <= A+B (the PD the proof actually runs through) is
  // genuinely weaker: relabel half a component with a fresh C value.
  {
    Database db;
    std::size_t ri = db.AddRelation("r", {"A", "B", "C"});
    db.relation(ri).AddRow(&db.symbols(), {"x", "y", "c1"});
    db.relation(ri).AddRow(&db.symbols(), {"x", "z", "c2"});  // A-connected
    ExprArena a2;
    Row("refined labels satisfy C <= A+B but not C = A+B", true,
        *RelationSatisfiesPd(db, db.relation(ri), a2,
                             *a2.ParsePd("C <= A+B")) &&
            !*RelationSatisfiesPd(db, db.relation(ri), a2,
                                  *a2.ParsePd("C = A+B")));
  }

  std::printf("\n%s\n", failures == 0 ? "THM4: all claims reproduced."
                                      : "THM4: MISMATCHES FOUND!");
  return failures == 0 ? 0 : 1;
}
