// ABL2: the partition-operation substrate, sparse reference vs dense
// kernels. The sparse path (Partition::Product/Sum) is the paper-literal
// canonical-form implementation; the dense path (DenseOps over an
// interned PartitionUniverse) is the PLI-style data path the library's
// hot loops run on. Both families run at identical sizes so the recorded
// artifact (BENCH_partition.json) exhibits the speedup directly; plus
// the L(I) closure cost as generator count grows (intrinsically
// exponential in the worst case, which is why ClosePartitions takes a
// cap).

#include <benchmark/benchmark.h>

#include "partition/dense.h"
#include "partition/eval_context.h"
#include "psem.h"
#include "util/rng.h"
#include "workloads.h"

namespace {

using namespace psem;
using bench::MakeBenchRng;

Partition RandomPartition(Rng* rng, std::size_t n, uint32_t blocks) {
  std::vector<Elem> pop(n);
  std::vector<uint32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop[i] = static_cast<Elem>(i);
    labels[i] = static_cast<uint32_t>(rng->Below(blocks));
  }
  return Partition::FromLabels(pop, labels);
}

DensePartition RandomDense(Rng* rng, std::size_t n, uint32_t blocks) {
  PartitionUniverse u = PartitionUniverse::Dense(n);
  return u.Densify(RandomPartition(rng, n, blocks));
}

void DefineRandomAbcd(PartitionInterpretation* interp, Rng* rng,
                      std::size_t n) {
  const char* names[] = {"A", "B", "C", "D"};
  for (const char* name : names) {
    Partition p = RandomPartition(rng, n, static_cast<uint32_t>(n / 8 + 2));
    std::unordered_map<std::string, uint32_t> naming;
    for (uint32_t bl = 0; bl < p.num_blocks(); ++bl) {
      naming[std::string(name) + "_" + std::to_string(bl)] = bl;
    }
    (void)interp->DefineAttribute(name, std::move(p), naming);
  }
}

// --- sparse reference (kept as the differential baseline) ----------------

void BM_PartitionProduct(benchmark::State& state) {
  Rng rng = MakeBenchRng(1);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Partition a = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  Partition b = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::Product(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PartitionProduct)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(131072)->Complexity();

void BM_PartitionSum(benchmark::State& state) {
  Rng rng = MakeBenchRng(2);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Partition a = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  Partition b = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::Sum(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PartitionSum)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(131072)->Complexity();

// --- dense kernels (the production data path) ----------------------------
// Same sizes and the same block-count profile as the sparse pair above,
// so name-for-name ratios in the JSON are the speedup.

void BM_DensePartitionProduct(benchmark::State& state) {
  Rng rng = MakeBenchRng(1);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DensePartition a = RandomDense(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  DensePartition b = RandomDense(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  DenseOps ops;
  DensePartition out;
  for (auto _ : state) {
    ops.Product(a, b, &out);
    benchmark::DoNotOptimize(out.num_blocks);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DensePartitionProduct)->Arg(256)->Arg(1024)->Arg(4096)
    ->Arg(16384)->Arg(131072)->Complexity();

void BM_DensePartitionSum(benchmark::State& state) {
  Rng rng = MakeBenchRng(2);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DensePartition a = RandomDense(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  DensePartition b = RandomDense(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  DenseOps ops;
  DensePartition out;
  for (auto _ : state) {
    ops.Sum(a, b, &out);
    benchmark::DoNotOptimize(out.num_blocks);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DensePartitionSum)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(131072)->Complexity();

void BM_DenseStrippedProduct(benchmark::State& state) {
  // The TANE/PLI shape: refine an existing stripped partition by a
  // column. Singleton blocks vanish from the representation, so repeated
  // refinement gets cheaper as partitions fragment.
  Rng rng = MakeBenchRng(3);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DensePartition x = RandomDense(&rng, n, static_cast<uint32_t>(n / 32 + 2));
  DensePartition col = RandomDense(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  DenseOps ops;
  StrippedPartition sx, out;
  ops.Strip(x, &sx);
  for (auto _ : state) {
    ops.StrippedProduct(sx, col, &out);
    benchmark::DoNotOptimize(out.flat.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DenseStrippedProduct)->Arg(256)->Arg(1024)->Arg(4096)
    ->Arg(16384)->Arg(131072)->Complexity();

void BM_MemoizedEval(benchmark::State& state) {
  // Repeated evaluation of one expression DAG over a fixed
  // interpretation: the steady-state cost of the memoized path (epoch
  // unchanged, every subexpression a hit) vs re-deriving from scratch
  // (BM_SparseEval below).
  Rng rng = MakeBenchRng(4);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  PartitionInterpretation interp;
  DefineRandomAbcd(&interp, &rng, n);
  ExprArena arena;
  ExprId e = *arena.Parse("(A * B + C) * (B + C * D) + A * D");
  EvalContext ctx;
  for (auto _ : state) {
    auto r = ctx.Eval(arena, interp, e);
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["memo_hits"] = static_cast<double>(ctx.stats().memo_hits);
}
BENCHMARK(BM_MemoizedEval)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_SparseEval(benchmark::State& state) {
  // The paper-literal recursive reference on the same DAG: what every
  // Eval call cost before the dense/memoized path.
  Rng rng = MakeBenchRng(4);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  PartitionInterpretation interp;
  DefineRandomAbcd(&interp, &rng, n);
  ExprArena arena;
  ExprId e = *arena.Parse("(A * B + C) * (B + C * D) + A * D");
  for (auto _ : state) {
    auto r = interp.EvalSparse(arena, e);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SparseEval)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_PartitionSumDisjointPopulations(benchmark::State& state) {
  Rng rng = MakeBenchRng(5);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Elem> pop_a(n), pop_b(n);
  std::vector<uint32_t> lab_a(n), lab_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop_a[i] = static_cast<Elem>(i);
    pop_b[i] = static_cast<Elem>(n + i);
    lab_a[i] = static_cast<uint32_t>(rng.Below(n / 4 + 1));
    lab_b[i] = static_cast<uint32_t>(rng.Below(n / 4 + 1));
  }
  Partition a = Partition::FromLabels(pop_a, lab_a);
  Partition b = Partition::FromLabels(pop_b, lab_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::Sum(a, b));
  }
}
BENCHMARK(BM_PartitionSumDisjointPopulations)->Arg(1024)->Arg(4096);

void BM_CanonicalInterpretation(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C", "D"});
  Rng rng = MakeBenchRng(6);
  for (std::size_t i = 0; i < rows; ++i) {
    db.relation(ri).AddRow(&db.symbols(),
                           {"a" + std::to_string(rng.Below(rows / 4 + 1)),
                            "b" + std::to_string(rng.Below(rows / 4 + 1)),
                            "c" + std::to_string(rng.Below(rows / 4 + 1)),
                            "d" + std::to_string(rng.Below(rows / 4 + 1))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CanonicalInterpretation(db, db.relation(ri)).ok());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_CanonicalInterpretation)->Arg(64)->Arg(256)->Arg(1024)
    ->Complexity();

void BM_PartitionClosureLattice(benchmark::State& state) {
  // Generators over a fixed 8-element population; closure size grows fast
  // with generator count.
  Rng rng = MakeBenchRng(7);
  int gens = static_cast<int>(state.range(0));
  std::vector<Partition> atoms;
  std::vector<std::string> names;
  for (int i = 0; i < gens; ++i) {
    atoms.push_back(RandomPartition(&rng, 8, 3));
    names.push_back("G" + std::to_string(i));
  }
  for (auto _ : state) {
    auto r = ClosePartitions(atoms, names, /*max_elements=*/100000);
    benchmark::DoNotOptimize(r.ok());
    if (r.ok()) state.counters["lattice_size"] = static_cast<double>(r->lattice.size());
  }
}
BENCHMARK(BM_PartitionClosureLattice)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
