// ABL2: the partition-operation substrate. Product via the merge-walk +
// pair-hash, sum via union-find chaining — both near-linear in the
// population; plus the L(I) closure cost as generator count grows (this
// one is intrinsically exponential in the worst case, which is why
// ClosePartitions takes a cap).

#include <benchmark/benchmark.h>

#include "psem.h"
#include "util/rng.h"

namespace {

using namespace psem;

Partition RandomPartition(Rng* rng, std::size_t n, uint32_t blocks) {
  std::vector<Elem> pop(n);
  std::vector<uint32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop[i] = static_cast<Elem>(i);
    labels[i] = static_cast<uint32_t>(rng->Below(blocks));
  }
  return Partition::FromLabels(pop, labels);
}

void BM_PartitionProduct(benchmark::State& state) {
  Rng rng(1);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Partition a = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  Partition b = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::Product(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PartitionProduct)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Complexity();

void BM_PartitionSum(benchmark::State& state) {
  Rng rng(2);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Partition a = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  Partition b = RandomPartition(&rng, n, static_cast<uint32_t>(n / 8 + 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::Sum(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PartitionSum)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Complexity();

void BM_PartitionSumDisjointPopulations(benchmark::State& state) {
  Rng rng(3);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Elem> pop_a(n), pop_b(n);
  std::vector<uint32_t> lab_a(n), lab_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop_a[i] = static_cast<Elem>(i);
    pop_b[i] = static_cast<Elem>(n + i);
    lab_a[i] = static_cast<uint32_t>(rng.Below(n / 4 + 1));
    lab_b[i] = static_cast<uint32_t>(rng.Below(n / 4 + 1));
  }
  Partition a = Partition::FromLabels(pop_a, lab_a);
  Partition b = Partition::FromLabels(pop_b, lab_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partition::Sum(a, b));
  }
}
BENCHMARK(BM_PartitionSumDisjointPopulations)->Arg(1024)->Arg(4096);

void BM_CanonicalInterpretation(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C", "D"});
  Rng rng(4);
  for (std::size_t i = 0; i < rows; ++i) {
    db.relation(ri).AddRow(&db.symbols(),
                           {"a" + std::to_string(rng.Below(rows / 4 + 1)),
                            "b" + std::to_string(rng.Below(rows / 4 + 1)),
                            "c" + std::to_string(rng.Below(rows / 4 + 1)),
                            "d" + std::to_string(rng.Below(rows / 4 + 1))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CanonicalInterpretation(db, db.relation(ri)).ok());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_CanonicalInterpretation)->Arg(64)->Arg(256)->Arg(1024)
    ->Complexity();

void BM_PartitionClosureLattice(benchmark::State& state) {
  // Generators over a fixed 8-element population; closure size grows fast
  // with generator count.
  Rng rng(5);
  int gens = static_cast<int>(state.range(0));
  std::vector<Partition> atoms;
  std::vector<std::string> names;
  for (int i = 0; i < gens; ++i) {
    atoms.push_back(RandomPartition(&rng, 8, 3));
    names.push_back("G" + std::to_string(i));
  }
  for (auto _ : state) {
    auto r = ClosePartitions(atoms, names, /*max_elements=*/100000);
    benchmark::DoNotOptimize(r.ok());
    if (r.ok()) state.counters["lattice_size"] = static_cast<double>(r->lattice.size());
  }
}
BENCHMARK(BM_PartitionClosureLattice)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
