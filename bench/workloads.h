// Synthetic workload generators shared by the benchmark binaries. The
// paper has no empirical section, so these families are designed to
// exercise each theorem's claimed complexity shape (see DESIGN.md §2-3):
// deterministic, seeded, and scalable in one size parameter.

#ifndef PSEM_BENCH_WORKLOADS_H_
#define PSEM_BENCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "psem.h"
#include "util/rng.h"

namespace psem {
namespace bench {

/// The one seed every benchmark workload derives from. Changing it (or
/// any generator below) invalidates comparisons against committed
/// BENCH_*.json artifacts — treat it as part of the benchmark contract.
inline constexpr uint64_t kBenchSeed = 0x9d5ecb852f1a7c03ull;

/// Deterministic per-stream generator: the same (seed, stream) pair
/// always yields the same workload, and distinct streams are decorrelated
/// splitmix64 states. Every benchmark harness seeds through this instead
/// of ad-hoc integer literals.
Rng MakeBenchRng(uint64_t stream);

/// Random partition expression over `num_attrs` attributes with exactly
/// `ops` operator nodes.
ExprId RandomExpr(ExprArena* arena, Rng* rng, int num_attrs, int ops);

/// Random PD theory: `num_pds` equations/inequalities with sides of up to
/// `max_ops` operators over `num_attrs` attributes.
std::vector<Pd> RandomTheory(ExprArena* arena, Rng* rng, int num_attrs,
                             int num_pds, int max_ops);

/// A batched implication query stream over the same attribute pool: a mix
/// of equations and inequalities whose subexpressions partially overlap a
/// theory drawn from the same (arena, num_attrs) — the workload shape of
/// BatchImplies and the incremental-closure path.
std::vector<Pd> RandomQueries(ExprArena* arena, Rng* rng, int num_attrs,
                              int num_queries, int max_ops);

/// Random FD set over attributes A0..A(num_attrs-1) (interned into the
/// universe).
std::vector<Fd> RandomFds(Universe* universe, Rng* rng, int num_attrs,
                          int num_fds, int max_lhs);

/// A fragmented database: `num_relations` binary relations over a shared
/// attribute pool, `rows_per_relation` random rows each, with
/// `symbols_per_attr` distinct symbols per attribute.
void RandomFragmentedDatabase(Database* db, Rng* rng, int num_attrs,
                              int num_relations, int rows_per_relation,
                              int symbols_per_attr);

/// The FPD chain A0 <= A1 <= ... <= A(n-1): ALG must derive the full
/// transitive closure; queries at distance n stress the arc rules.
std::vector<Pd> ChainTheory(ExprArena* arena, int n);

/// Deeply nested balanced expression of the given depth over k attributes,
/// alternating operators: stresses the Whitman deciders.
ExprId DeepExpr(ExprArena* arena, int depth, int num_attrs, bool start_sum);

}  // namespace bench
}  // namespace psem

#endif  // PSEM_BENCH_WORKLOADS_H_
