// THM11: consistency under CAD + EAP is NP-complete. On the Theorem 11
// reduction of random NAE-3SAT instances near the hard density, the exact
// CAD solver's node count grows exponentially with the variable count,
// while the open-world test (Theorem 12 semantics, Honeyman chase) on the
// very same databases stays polynomial — the paper's open/closed world
// complexity split, measured.

#include <benchmark/benchmark.h>

#include "psem.h"

namespace {

using namespace psem;

void BM_CadExactOnReducedNae(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  uint32_t m = static_cast<uint32_t>(2.3 * n);  // near NAE-3SAT threshold
  uint64_t total_nodes = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    NaeFormula f = RandomNae3(n, m, /*seed=*/1000 + runs);
    Database db;
    CadReduction red = *ReduceNaeToCad(f, &db);
    state.ResumeTiming();
    CadResult res = CadConsistent(db, red.fds, /*node_budget=*/50'000'000);
    benchmark::DoNotOptimize(res.consistent);
    total_nodes += res.nodes;
    ++runs;
  }
  state.counters["nodes/run"] =
      static_cast<double>(total_nodes) / static_cast<double>(runs);
}
BENCHMARK(BM_CadExactOnReducedNae)->Arg(3)->Arg(5)->Arg(7)->Arg(9)->Arg(11)
    ->Arg(13)->Unit(benchmark::kMillisecond);

void BM_OpenWorldOnSameInstances(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  uint32_t m = static_cast<uint32_t>(2.3 * n);
  uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    NaeFormula f = RandomNae3(n, m, /*seed=*/1000 + runs);
    Database db;
    CadReduction red = *ReduceNaeToCad(f, &db);
    state.ResumeTiming();
    // Open world: nulls may take fresh values — polynomial (and here the
    // instances are always consistent, because the padded rows never
    // force constant clashes without CAD).
    benchmark::DoNotOptimize(WeakInstanceConsistent(db, red.fds));
    ++runs;
  }
}
BENCHMARK(BM_OpenWorldOnSameInstances)->Arg(3)->Arg(5)->Arg(7)->Arg(9)->Arg(11)
    ->Arg(13)->Unit(benchmark::kMillisecond);

void BM_NaeDpllDirect(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  uint32_t m = static_cast<uint32_t>(2.3 * n);
  uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    NaeFormula f = RandomNae3(n, m, /*seed=*/1000 + runs);
    state.ResumeTiming();
    benchmark::DoNotOptimize(NaeSolve(f).assignment.has_value());
    ++runs;
  }
}
BENCHMARK(BM_NaeDpllDirect)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

}  // namespace

