// THM4 / Example e: connected components through partition semantics.
// Benches component extraction via the PD route (canonical interpretation
// + partition sum) against plain union-find on the original graph, and
// the cost of *verifying* r |= C = A+B as the graph grows. The PD route
// carries the canonical-interpretation overhead but the same near-linear
// shape (inverse-Ackermann union-find underneath).

#include <benchmark/benchmark.h>

#include "psem.h"

namespace {

using namespace psem;

void BM_ComponentsUnionFind(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = Graph::Random(n, n * 2, /*seed=*/7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.ComponentsUnionFind());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ComponentsUnionFind)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity();

void BM_ComponentsViaPdSemantics(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = Graph::Random(n, n * 2, /*seed=*/7);
  Database db;
  std::size_t ri = EncodeGraphRelation(g, &db);
  for (auto _ : state) {
    auto comp = ComponentsViaPdSemantics(db, ri, g.num_vertices());
    benchmark::DoNotOptimize(comp.ok());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ComponentsViaPdSemantics)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096)->Complexity();

void BM_VerifySumPd(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = Graph::Random(n, n * 2, /*seed=*/7);
  Database db;
  std::size_t ri = EncodeGraphRelation(g, &db);
  ExprArena arena;
  Pd pd = *arena.ParsePd("C = A+B");
  for (auto _ : state) {
    auto sat = RelationSatisfiesPd(db, db.relation(ri), arena, pd);
    benchmark::DoNotOptimize(*sat);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_VerifySumPd)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_EncodeGraph(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Graph g = Graph::Random(n, n * 2, /*seed=*/7);
  for (auto _ : state) {
    Database db;
    benchmark::DoNotOptimize(EncodeGraphRelation(g, &db));
  }
}
BENCHMARK(BM_EncodeGraph)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

