// BATCH1: the batched/parallel/incremental PD-implication service layer
// (core/implication.h) against the single-thread cold-closure baseline.
// Four comparisons, all on the RandomTheory/RandomQueries workload family
// from workloads.h:
//
//   * BM_ColdPerQuery      — the baseline: one fresh engine per query, so
//                            every query pays a full cold closure.
//   * BM_BatchImplies/T    — one engine, whole query span, T workers:
//                            batching amortizes the closure, the banded
//                            sweep parallelizes it.
//   * BM_ClosureOnly/T     — thread scaling of the closure sweep alone.
//   * BM_IncrementalStream — queries arriving one at a time against one
//     vs BM_ColdStream       engine (warm re-close of the dirty frontier)
//                            vs a fresh engine per query.
//
// CI runs this with --benchmark_format=json and stores the output as
// BENCH_implication.json — the perf trajectory for the service layer
// (see README.md "Performance" for one recorded run).

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

constexpr int kNumAttrs = 10;
constexpr int kNumPds = 24;
constexpr int kTheoryOps = 5;
constexpr int kQueryOps = 4;
constexpr int kBatchSize = 256;
constexpr int kStreamLen = 32;

// One deterministic workload shared by every benchmark: sizes chosen so
// the theory-only vertex set is ~10^2 and the full batch roughly doubles
// it (measured counters V_theory / V_batch report the actual values).
void SetupWorkload(ExprArena* arena, std::vector<Pd>* theory,
                   std::vector<Pd>* queries, int num_queries = kBatchSize) {
  Rng rng = MakeBenchRng(424242);
  *theory = RandomTheory(arena, &rng, kNumAttrs, kNumPds, kTheoryOps);
  *queries = RandomQueries(arena, &rng, kNumAttrs, num_queries, kQueryOps);
}

// Baseline: every query pays vertex construction + a cold closure.
void BM_ColdPerQuery(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> theory, queries;
  SetupWorkload(&arena, &theory, &queries);
  std::size_t i = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, theory);
    benchmark::DoNotOptimize(engine.Implies(queries[i++ % queries.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdPerQuery);

// One engine answers the whole batch: a single shared closure, LRU-cached
// verdicts, T-way banded sweeps. Engine construction is inside the timed
// region so the comparison against BM_ColdPerQuery is end-to-end.
void BM_BatchImplies(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> theory, queries;
  SetupWorkload(&arena, &theory, &queries);
  EngineOptions options{.num_threads = static_cast<std::size_t>(state.range(0))};
  std::size_t vertices = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, theory, options);
    std::vector<bool> verdicts = engine.BatchImplies(queries);
    benchmark::DoNotOptimize(verdicts);
    vertices = engine.stats().num_vertices;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["V_batch"] = static_cast<double>(vertices);
}
BENCHMARK(BM_BatchImplies)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The closure sweep alone (Prepare over every batch subexpression), for
// the thread-scaling curve without query-answering overhead.
void BM_ClosureOnly(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> theory, queries;
  SetupWorkload(&arena, &theory, &queries);
  std::vector<ExprId> roots;
  for (const Pd& q : queries) {
    roots.push_back(q.lhs);
    roots.push_back(q.rhs);
  }
  EngineOptions options{.num_threads = static_cast<std::size_t>(state.range(0))};
  std::size_t passes = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, theory, options);
    engine.Prepare(roots);
    benchmark::DoNotOptimize(engine.stats().num_arcs);
    passes = engine.stats().passes;
  }
  state.counters["passes"] = static_cast<double>(passes);
}
BENCHMARK(BM_ClosureOnly)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Query stream, one engine: each query with fresh subexpressions extends
// V and re-closes only the dirty frontier (warm start).
void BM_IncrementalStream(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> theory, stream;
  SetupWorkload(&arena, &theory, &stream, kStreamLen);
  std::size_t incremental = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, theory);
    for (const Pd& q : stream) benchmark::DoNotOptimize(engine.Implies(q));
    incremental = engine.stats().incremental_closures;
  }
  state.SetItemsProcessed(state.iterations() * kStreamLen);
  state.counters["incr_closures"] = static_cast<double>(incremental);
}
BENCHMARK(BM_IncrementalStream);

// The same stream with a fresh engine per query: every arrival pays a
// cold closure over its whole V.
void BM_ColdStream(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> theory, stream;
  SetupWorkload(&arena, &theory, &stream, kStreamLen);
  for (auto _ : state) {
    for (const Pd& q : stream) {
      PdImplicationEngine engine(&arena, theory);
      benchmark::DoNotOptimize(engine.Implies(q));
    }
  }
  state.SetItemsProcessed(state.iterations() * kStreamLen);
}
BENCHMARK(BM_ColdStream);

// Steady-state serving: the closure is built and the cache is warm; each
// query is an LRU hit or an O(1) bit probe. This is the per-query cost a
// long-running service converges to.
void BM_WarmCacheQueries(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> theory, queries;
  SetupWorkload(&arena, &theory, &queries);
  PdImplicationEngine engine(&arena, theory,
                             EngineOptions{.cache_capacity = 4096});
  std::vector<bool> warmup = engine.BatchImplies(queries);
  benchmark::DoNotOptimize(warmup);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Implies(queries[i++ % queries.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hit_rate"] = engine.stats().CacheHitRate();
}
BENCHMARK(BM_WarmCacheQueries);

}  // namespace

