// §5.3: FD implication is the idempotent-commutative-semigroup special
// case of PD implication. Measures the dedicated linear-time closure
// (Beeri–Bernstein) against Algorithm ALG run on the FPD encodings of the
// same FD sets: identical verdicts (asserted in tests), very different
// constants — the reason the FD fast path exists.

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

struct FdWorkload {
  Universe universe;
  std::vector<Fd> fds;
  std::vector<Fd> queries;
};

FdWorkload MakeWorkload(int num_attrs, int num_fds) {
  FdWorkload w;
  Rng rng = MakeBenchRng(4321);
  w.fds = RandomFds(&w.universe, &rng, num_attrs, num_fds, 3);
  for (int i = 0; i < 16; ++i) {
    auto q = RandomFds(&w.universe, &rng, num_attrs, 1, 3);
    w.queries.push_back(q[0]);
  }
  return w;
}

void BM_FdClosureImplication(benchmark::State& state) {
  FdWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0)) * 2);
  FdTheory theory(&w.universe);
  for (const Fd& fd : w.fds) theory.Add(fd);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory.Implies(w.queries[i++ % w.queries.size()]));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FdClosureImplication)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Complexity();

void BM_FdViaAlgFpdEncoding(benchmark::State& state) {
  FdWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0)) * 2);
  ExprArena arena;
  std::vector<Pd> fpds = FdsToFpds(w.universe, &arena, w.fds);
  std::vector<Pd> queries;
  for (const Fd& q : w.queries) queries.push_back(FdToFpd(w.universe, &arena, q));
  std::size_t i = 0;
  for (auto _ : state) {
    // A fresh engine per query: the non-amortized cost of the general
    // machinery on the special case.
    PdImplicationEngine engine(&arena, fpds);
    benchmark::DoNotOptimize(engine.Implies(queries[i++ % queries.size()]));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FdViaAlgFpdEncoding)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_FdClosureComputation(benchmark::State& state) {
  FdWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0)) * 2);
  FdTheory theory(&w.universe);
  for (const Fd& fd : w.fds) theory.Add(fd);
  AttrSet x(w.universe.size());
  x.Set(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory.Closure(x));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FdClosureComputation)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_MinimalCover(benchmark::State& state) {
  FdWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0)));
  FdTheory theory(&w.universe);
  for (const Fd& fd : w.fds) theory.Add(fd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory.MinimalCover());
  }
}
BENCHMARK(BM_MinimalCover)->Arg(8)->Arg(16)->Arg(32);

void BM_KeyEnumeration(benchmark::State& state) {
  FdWorkload w = MakeWorkload(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0)));
  FdTheory theory(&w.universe);
  for (const Fd& fd : w.fds) theory.Add(fd);
  AttrSet scheme(w.universe.size());
  scheme.SetAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(theory.Keys(scheme));
  }
}
BENCHMARK(BM_KeyEnumeration)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

