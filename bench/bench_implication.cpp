// THM9 + ABL1: PD implication is polynomial (Theorem 9). Measures
// Algorithm ALG (bit-parallel engine) against the literal rule-by-rule
// naive closure across growing vertex counts n = |V|. The paper claims a
// straightforward implementation is O(n^4); the measured log-log slope of
// the engine should be comfortably polynomial (<= ~4), with the naive
// variant far more expensive at equal sizes.

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

// Random theory sized so that |V| grows linearly with the range arg.
void SetupTheory(int size, ExprArena* arena, std::vector<Pd>* pds, Pd* query) {
  Rng rng = MakeBenchRng(1234);
  *pds = RandomTheory(arena, &rng, /*num_attrs=*/8, /*num_pds=*/size,
                      /*max_ops=*/4);
  ExprId l = RandomExpr(arena, &rng, 8, 4);
  ExprId r = RandomExpr(arena, &rng, 8, 4);
  *query = Pd::Leq(l, r);
}

void BM_AlgEngineRandomTheory(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> pds;
  Pd query;
  SetupTheory(static_cast<int>(state.range(0)), &arena, &pds, &query);
  std::size_t vertices = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, pds);
    benchmark::DoNotOptimize(engine.Implies(query));
    vertices = engine.stats().num_vertices;
  }
  state.counters["V"] = static_cast<double>(vertices);
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_AlgEngineRandomTheory)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Complexity();

void BM_NaiveRulesRandomTheory(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> pds;
  Pd query;
  SetupTheory(static_cast<int>(state.range(0)), &arena, &pds, &query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaivePdImplication(arena, pds, query));
  }
}
BENCHMARK(BM_NaiveRulesRandomTheory)->Arg(4)->Arg(8)->Arg(16);

// Chain theories: derives a quadratic number of order consequences.
void BM_AlgEngineChain(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> pds = ChainTheory(&arena, static_cast<int>(state.range(0)));
  Pd query = Pd::Leq(arena.Attr("A0"),
                     arena.Attr("A" + std::to_string(state.range(0) - 1)));
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, pds);
    bool implied = engine.Implies(query);
    benchmark::DoNotOptimize(implied);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AlgEngineChain)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity();

// --- closure-scaling workloads (delta-closure trajectory) -------------------
//
// Two families that bracket the semi-naive engine's operating envelope,
// closure time only (engine construction + Prepare, no query answering):
//
//  * sparse chain theories — the FPD chain A0 <= A1 <= ... <= A(n-1).
//    Per-pass arc deltas are tiny relative to the matrix, which is
//    exactly the shape where the worklist/delta discipline should win
//    (the old sweeps rescanned all n rows and re-counted/re-transposed
//    the whole matrix every pass).
//
//  * dense random theories — equation-heavy random PDs over few
//    attributes; the closure saturates and the engine's blocked-dense
//    endgame carries most passes. The target here is "no regression",
//    not speedup.
//
// Committed numbers live in BENCH_implication.json; the delta-closure
// before/after comparison is recorded in docs/performance.md.

void BM_ClosureSparseChain(benchmark::State& state) {
  ExprArena arena;
  const int n = static_cast<int>(state.range(0));
  std::vector<Pd> pds = ChainTheory(&arena, n);
  std::size_t arcs = 0, passes = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, pds);
    engine.Prepare({});
    benchmark::DoNotOptimize(engine.stats().num_arcs);
    arcs = engine.stats().num_arcs;
    passes = engine.stats().passes;
  }
  state.counters["V"] = static_cast<double>(n);
  state.counters["arcs"] = static_cast<double>(arcs);
  state.counters["passes"] = static_cast<double>(passes);
  state.SetComplexityN(n);
}
BENCHMARK(BM_ClosureSparseChain)
    ->Arg(512)->Arg(2048)->Arg(4096)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_ClosureDenseRandom(benchmark::State& state) {
  ExprArena arena;
  Rng rng = MakeBenchRng(7777);
  const int target = static_cast<int>(state.range(0));
  // Equation-heavy random theory over few attributes: |V| tracks the
  // range arg (reported as the V counter) and the closure saturates.
  std::vector<Pd> pds =
      RandomTheory(&arena, &rng, /*num_attrs=*/6, /*num_pds=*/target / 8,
                   /*max_ops=*/8);
  std::size_t vertices = 0, arcs = 0;
  for (auto _ : state) {
    PdImplicationEngine engine(&arena, pds);
    engine.Prepare({});
    benchmark::DoNotOptimize(engine.stats().num_arcs);
    vertices = engine.stats().num_vertices;
    arcs = engine.stats().num_arcs;
  }
  state.counters["V"] = static_cast<double>(vertices);
  state.counters["arcs"] = static_cast<double>(arcs);
  state.SetComplexityN(static_cast<int64_t>(vertices));
}
BENCHMARK(BM_ClosureDenseRandom)
    ->Arg(512)->Arg(2048)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Repeated queries against one prepared engine (the amortized mode).
void BM_AlgEnginePreparedQueries(benchmark::State& state) {
  ExprArena arena;
  std::vector<Pd> pds = ChainTheory(&arena, 64);
  PdImplicationEngine engine(&arena, pds);
  // Prepare once with all attributes.
  std::vector<ExprId> attrs;
  for (int i = 0; i < 64; ++i) attrs.push_back(arena.Attr("A" + std::to_string(i)));
  engine.Prepare(attrs);
  Rng rng = MakeBenchRng(5);
  for (auto _ : state) {
    ExprId a = attrs[rng.Below(64)];
    ExprId b = attrs[rng.Below(64)];
    benchmark::DoNotOptimize(engine.LeqInClosure(a, b));
  }
}
BENCHMARK(BM_AlgEnginePreparedQueries);

}  // namespace

