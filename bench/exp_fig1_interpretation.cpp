// FIG1: executable reproduction of Figure 1 (Section 3.2).
//
// The paper's figure exhibits a partition interpretation I over A, B, C
// with populations {1,2,3,4}, a database d it satisfies together with
// E = {A = A*B}, CAD and EAP, and notes that L(I) is not distributive,
// witnessed by B*(A+C) != (B*A) + (B*C).
//
// This binary rebuilds the figure and prints paper-claim vs measured for
// every statement in it.

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {
int failures = 0;
void Row(const char* claim, bool expected, bool measured) {
  bool ok = expected == measured;
  if (!ok) ++failures;
  std::printf("  %-52s paper: %-5s measured: %-5s %s\n", claim,
              expected ? "true" : "false", measured ? "true" : "false",
              ok ? "OK" : "MISMATCH");
}
}  // namespace

int main() {
  std::printf("== FIG1: Figure 1 reproduction ==\n\n");

  PartitionInterpretation interp;
  Partition pa = Partition::FromBlocks({{1}, {4}, {2, 3}});
  Partition pb = Partition::FromBlocks({{1, 4}, {2, 3}});
  Partition pc = Partition::FromBlocks({{1, 2}, {3, 4}});
  (void)interp.DefineAttribute("A", pa,
                               {{"a", *pa.BlockOf(1)},
                                {"a1", *pa.BlockOf(4)},
                                {"a2", *pa.BlockOf(2)}});
  (void)interp.DefineAttribute("B", pb,
                               {{"b", *pb.BlockOf(1)},
                                {"b1", *pb.BlockOf(2)}});
  (void)interp.DefineAttribute("C", pc,
                               {{"c", *pc.BlockOf(1)},
                                {"c1", *pc.BlockOf(3)}});
  std::printf("interpretation I:\n%s\n", interp.ToString().c_str());

  Database db;
  std::size_t ri = db.AddRelation("R", {"A", "B", "C"});
  db.relation(ri).AddRow(&db.symbols(), {"a", "b", "c"});
  db.relation(ri).AddRow(&db.symbols(), {"a2", "b1", "c"});
  db.relation(ri).AddRow(&db.symbols(), {"a2", "b1", "c1"});
  db.relation(ri).AddRow(&db.symbols(), {"a1", "b", "c1"});
  std::printf("database d:\n%s\n",
              db.relation(ri).ToString(db.universe(), db.symbols()).c_str());

  ExprArena arena;
  Row("I |= d", true, *interp.SatisfiesDatabase(db));
  Row("I |= A = A*B            (E of the figure)", true,
      *interp.Satisfies(arena, *arena.ParsePd("A = A*B")));
  Row("I |= CAD", true, *interp.SatisfiesCad(db));
  Row("I |= EAP", true, interp.SatisfiesEap());

  PartitionClosure closure = *InterpretationLattice(interp);
  std::printf("\nL(I) has %zu elements:\n", closure.lattice.size());
  for (std::size_t i = 0; i < closure.elements.size(); ++i) {
    std::printf("  %-4s = %s\n", closure.lattice.NameOf(
                                     static_cast<LatticeElem>(i)).c_str(),
                closure.elements[i].ToString().c_str());
  }
  std::printf("\n");
  Row("L(I) satisfies the lattice axioms (Theorem 1)", true,
      closure.lattice.ValidateAxioms().ok());
  Row("L(I) is distributive", false, closure.lattice.IsDistributive());

  Partition lhs = *interp.Eval(arena, *arena.Parse("B*(A+C)"));
  Partition rhs = *interp.Eval(arena, *arena.Parse("B*A + B*C"));
  Row("B*(A+C) = (B*A) + (B*C)", false, lhs == rhs);
  std::printf("\n    B*(A+C)       = %s\n", lhs.ToString().c_str());
  std::printf("    (B*A) + (B*C) = %s\n", rhs.ToString().c_str());

  std::printf("\n%s\n", failures == 0 ? "FIG1: all claims reproduced."
                                      : "FIG1: MISMATCHES FOUND!");
  return failures == 0 ? 0 : 1;
}
