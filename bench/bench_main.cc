// Shared main for every benchmark binary. Two provenance jobs:
//
//  1. Embed the library's build type into the JSON context as
//     "psem_build_type". google-benchmark's own "library_build_type"
//     field reports how the *benchmark library* was compiled — on systems
//     whose packaged libbenchmark is a debug build it says "debug" even
//     when the code under test is -O3, which is exactly the trap the
//     committed BENCH_*.json artifacts fell into once. The record script
//     (scripts/record_bench.py) keys on psem_build_type instead.
//
//  2. Refuse to write a benchmark artifact from a non-Release build:
//     numbers from -O0 code are not comparable and must not end up in a
//     committed BENCH_*.json. Console runs still work (with a warning);
//     set PSEM_BENCH_ALLOW_DEBUG=1 to override for debugging the
//     harness itself.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifndef PSEM_BUILD_TYPE
#define PSEM_BUILD_TYPE "unknown"
#endif

namespace {

bool IsRelease() {
  // Match "Release" and "RelWithDebInfo"; anything else is unfit for
  // recorded numbers.
  return std::strncmp(PSEM_BUILD_TYPE, "Rel", 3) == 0;
}

bool WantsFileOutput(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("psem_build_type", PSEM_BUILD_TYPE);
  if (!IsRelease()) {
    if (WantsFileOutput(argc, argv) &&
        std::getenv("PSEM_BENCH_ALLOW_DEBUG") == nullptr) {
      std::fprintf(stderr,
                   "refusing to record benchmark output from a %s build; "
                   "rebuild with -DCMAKE_BUILD_TYPE=Release "
                   "(or set PSEM_BENCH_ALLOW_DEBUG=1 to override)\n",
                   PSEM_BUILD_TYPE);
      return 1;
    }
    std::fprintf(stderr,
                 "warning: benchmarking a %s build; numbers are not "
                 "comparable to recorded Release artifacts\n",
                 PSEM_BUILD_TYPE);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
