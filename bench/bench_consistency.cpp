// THM12 + CHASE: the polynomial consistency test for databases with PDs.
// Scales the database (rows) and the constraint set independently; the
// runtime must stay polynomial in both. Also benches the raw Honeyman
// chase on FD-only inputs (the [19] substrate).

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

void BM_PdConsistencyVsRows(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    Rng rng = MakeBenchRng(42);
    RandomFragmentedDatabase(&db, &rng, /*num_attrs=*/6, /*num_relations=*/4,
                             rows, /*symbols_per_attr=*/rows / 2 + 2);
    ExprArena arena;
    std::vector<Pd> pds = {*arena.ParsePd("A0 <= A1"),
                           *arena.ParsePd("A2 = A0+A1"),
                           *arena.ParsePd("A3 <= A4*A5")};
    state.ResumeTiming();
    benchmark::DoNotOptimize(PdConsistent(&db, arena, pds)->consistent);
  }
  state.SetComplexityN(rows);
}
BENCHMARK(BM_PdConsistencyVsRows)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_PdConsistencyVsTheorySize(benchmark::State& state) {
  int num_pds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    Rng rng = MakeBenchRng(43);
    RandomFragmentedDatabase(&db, &rng, /*num_attrs=*/num_pds + 2,
                             /*num_relations=*/4, /*rows=*/16,
                             /*symbols_per_attr=*/8);
    ExprArena arena;
    Rng trng(17);
    std::vector<Pd> pds =
        RandomTheory(&arena, &trng, /*num_attrs=*/num_pds + 2, num_pds,
                     /*max_ops=*/3);
    // RandomTheory names attributes A<k>, matching the database.
    state.ResumeTiming();
    benchmark::DoNotOptimize(PdConsistent(&db, arena, pds)->consistent);
  }
  state.SetComplexityN(num_pds);
}
BENCHMARK(BM_PdConsistencyVsTheorySize)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32)->Complexity();

void BM_HoneymanChase(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  Database db;
  Rng rng = MakeBenchRng(44);
  RandomFragmentedDatabase(&db, &rng, /*num_attrs=*/8, /*num_relations=*/6,
                           rows, /*symbols_per_attr=*/rows / 2 + 2);
  Universe* u = &db.universe();
  std::vector<Fd> fds;
  for (int i = 0; i + 1 < 8; ++i) {
    auto fd = Fd::Parse(u, "A" + std::to_string(i) + " -> A" +
                               std::to_string(i + 1));
    if (fd.ok()) fds.push_back(*fd);
  }
  for (auto _ : state) {
    Tableau t = Tableau::Representative(db, db.universe().size());
    ChaseResult res = ChaseWithFds(&t, fds);
    benchmark::DoNotOptimize(res.consistent);
  }
  state.SetComplexityN(rows);
}
BENCHMARK(BM_HoneymanChase)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_NormalizeOnly(benchmark::State& state) {
  int num_pds = static_cast<int>(state.range(0));
  ExprArena arena;
  Rng rng = MakeBenchRng(7);
  std::vector<Pd> pds = RandomTheory(&arena, &rng, num_pds + 2, num_pds, 4);
  for (auto _ : state) {
    Universe u;
    benchmark::DoNotOptimize(NormalizePds(arena, pds, &u).ok());
  }
  state.SetComplexityN(num_pds);
}
BENCHMARK(BM_NormalizeOnly)->Arg(4)->Arg(16)->Arg(64)->Complexity();

}  // namespace

