// Query-layer benchmarks: closed-world conjunctive-query evaluation,
// certain-answer evaluation over chased weak instances, congruence
// closure, and lattice structural analysis.

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

// A star-schema-ish database: fact(K, D1, D2), dim1(D1, X), dim2(D2, Y).
void BuildStar(Database* db, Rng* rng, int facts, int dims) {
  std::size_t f = db->AddRelation("fact", {"K", "D1", "D2"});
  for (int i = 0; i < facts; ++i) {
    db->relation(f).AddRow(&db->symbols(),
                           {"k" + std::to_string(i),
                            "d" + std::to_string(rng->Below(dims)),
                            "e" + std::to_string(rng->Below(dims))});
  }
  std::size_t d1 = db->AddRelation("dim1", {"D1", "X"});
  std::size_t d2 = db->AddRelation("dim2", {"D2", "Y"});
  for (int i = 0; i < dims; ++i) {
    db->relation(d1).AddRow(&db->symbols(),
                            {"d" + std::to_string(i),
                             "x" + std::to_string(i % 5)});
    db->relation(d2).AddRow(&db->symbols(),
                            {"e" + std::to_string(i),
                             "y" + std::to_string(i % 5)});
  }
}

void BM_ConjunctiveQueryJoin(benchmark::State& state) {
  int facts = static_cast<int>(state.range(0));
  Database db;
  Rng rng = MakeBenchRng(71);
  BuildStar(&db, &rng, facts, facts / 4 + 2);
  auto q = *ConjunctiveQuery::Parse(
      "ans(K, X, Y) :- fact(K, A, B), dim1(A, X), dim2(B, Y)");
  for (auto _ : state) {
    auto answers = EvaluateQuery(&db, q);
    benchmark::DoNotOptimize(answers.ok());
  }
  state.SetComplexityN(facts);
}
BENCHMARK(BM_ConjunctiveQueryJoin)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_CertainAnswersOverChase(benchmark::State& state) {
  int facts = static_cast<int>(state.range(0));
  Database db;
  Rng rng = MakeBenchRng(72);
  BuildStar(&db, &rng, facts, facts / 4 + 2);
  std::vector<Fd> fds = {*Fd::Parse(&db.universe(), "D1 -> X"),
                         *Fd::Parse(&db.universe(), "D2 -> Y"),
                         *Fd::Parse(&db.universe(), "K -> D1 D2")};
  QueryTerm k{true, 0, ""}, x{true, 1, ""};
  UniversalAtom atom{{{"K", k}, {"X", x}}};
  for (auto _ : state) {
    auto answers = CertainAnswers(&db, fds, {"K", "X"}, {0, 1}, {atom});
    benchmark::DoNotOptimize(answers.ok());
  }
  state.SetComplexityN(facts);
}
BENCHMARK(BM_CertainAnswersOverChase)->Arg(32)->Arg(128)->Arg(512)
    ->Complexity();

void BM_CongruenceClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ExprArena arena;
    Rng rng = MakeBenchRng(73);
    std::vector<ExprId> exprs;
    for (int i = 0; i < n; ++i) {
      exprs.push_back(RandomExpr(&arena, &rng, 5, 3));
    }
    state.ResumeTiming();
    CongruenceClosure cc(&arena);
    for (int i = 0; i + 1 < n; i += 2) {
      cc.AddEquation(exprs[i], exprs[i + 1]);
    }
    benchmark::DoNotOptimize(cc.NumClasses());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CongruenceClosure)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_LatticeSummarize(benchmark::State& state) {
  auto full = FullPartitionLattice(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Summarize(full.lattice));
  }
  state.counters["n"] = static_cast<double>(full.lattice.size());
}
BENCHMARK(BM_LatticeSummarize)->Arg(4)->Arg(5)->Arg(6);

void BM_LatticeDotExport(benchmark::State& state) {
  auto full = FullPartitionLattice(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExportLatticeDot(full.lattice));
  }
}
BENCHMARK(BM_LatticeDotExport);

}  // namespace

