// FIG2: executable reproduction of Figure 2 / Theorem 5 (Section 4.2).
//
// r1 satisfies the multivalued dependency phi = A ->> B; r2 violates it;
// yet L(I(r1)) and L(I(r2)) are isomorphic lattices. Since PD satisfaction
// factors through L(I(r)) (Theorem 1 + Definition 7), no set of PDs can
// express the MVD. This binary rebuilds both relations, checks every
// claim, and additionally samples PDs to confirm the two relations agree
// on all of them.

#include <cstdio>

#include "psem.h"

using namespace psem;

namespace {
int failures = 0;
void Row(const char* claim, bool expected, bool measured) {
  bool ok = expected == measured;
  if (!ok) ++failures;
  std::printf("  %-52s paper: %-5s measured: %-5s %s\n", claim,
              expected ? "true" : "false", measured ? "true" : "false",
              ok ? "OK" : "MISMATCH");
}
}  // namespace

int main() {
  std::printf("== FIG2: Figure 2 / Theorem 5 reproduction ==\n\n");

  Database db;
  std::size_t i1 = db.AddRelation("r1", {"A", "B", "C"});
  Relation& r1 = db.relation(i1);
  r1.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b1", "c2"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c1"});
  r1.AddRow(&db.symbols(), {"a", "b2", "c2"});
  std::size_t i2 = db.AddRelation("r2", {"A", "B", "C"});
  Relation& r2 = db.relation(i2);
  r2.AddRow(&db.symbols(), {"a", "b1", "c1"});
  r2.AddRow(&db.symbols(), {"a", "b2", "c2"});
  r2.AddRow(&db.symbols(), {"a", "b1", "c2"});

  std::printf("%s\n%s\n",
              r1.ToString(db.universe(), db.symbols()).c_str(),
              r2.ToString(db.universe(), db.symbols()).c_str());

  Mvd mvd = *Mvd::Parse(&db.universe(), "A ->> B");
  Row("r1 |= A ->> B", true, *SatisfiesMvd(r1, mvd));
  Row("r2 |= A ->> B", false, *SatisfiesMvd(r2, mvd));

  PartitionInterpretation in1 = *CanonicalInterpretation(db, r1);
  PartitionInterpretation in2 = *CanonicalInterpretation(db, r2);
  PartitionClosure c1 = *InterpretationLattice(in1);
  PartitionClosure c2 = *InterpretationLattice(in2);
  std::printf("\n|L(I(r1))| = %zu, |L(I(r2))| = %zu\n", c1.lattice.size(),
              c2.lattice.size());
  Row("L(I(r1)) isomorphic to L(I(r2))", true,
      c1.lattice.IsomorphicTo(c2.lattice));

  // Sampled PD agreement: any PD E separating r1 from r2 would contradict
  // the isomorphism. Exhaust all small PDs over {A, B, C} with <= 2
  // operators per side.
  ExprArena arena;
  std::vector<ExprId> sides;
  for (const char* s :
       {"A", "B", "C", "A*B", "A*C", "B*C", "A+B", "A+C", "B+C", "A*B*C",
        "A+B+C", "A*(B+C)", "B*(A+C)", "C*(A+B)", "A+B*C", "B+A*C",
        "C+A*B"}) {
    sides.push_back(*arena.Parse(s));
  }
  int checked = 0, agreements = 0;
  for (ExprId l : sides) {
    for (ExprId r : sides) {
      Pd pd = Pd::Eq(l, r);
      bool s1 = *RelationSatisfiesPd(db, r1, arena, pd);
      bool s2 = *RelationSatisfiesPd(db, r2, arena, pd);
      ++checked;
      agreements += (s1 == s2);
    }
  }
  std::printf("\nsampled PD agreement: %d / %d equations agree\n", agreements,
              checked);
  Row("r1 and r2 satisfy exactly the same sampled PDs", true,
      agreements == checked);

  std::printf("\n%s\n", failures == 0 ? "FIG2: all claims reproduced."
                                      : "FIG2: MISMATCHES FOUND!");
  return failures == 0 ? 0 : 1;
}
