// THM10: recognizing PD identities. Compares the memoized Whitman decider
// (polynomial time, quadratic memo) against the storage-free iterative
// decider (the Theorem 10 observation: no results of intermediate calls
// are stored; auxiliary space is one frame per recursion level). Reports
// the iterative decider's peak stack depth so the O(depth) auxiliary
// space shape is visible in the output.

#include <benchmark/benchmark.h>

#include "psem.h"
#include "workloads.h"

namespace {

using namespace psem;
using namespace psem::bench;

void BM_WhitmanMemoDeep(benchmark::State& state) {
  ExprArena arena;
  int depth = static_cast<int>(state.range(0));
  ExprId p = DeepExpr(&arena, depth, 4, /*start_sum=*/false);
  ExprId q = DeepExpr(&arena, depth, 4, /*start_sum=*/true);
  for (auto _ : state) {
    WhitmanMemo memo(&arena);  // fresh memo: measure the full decision
    benchmark::DoNotOptimize(memo.Leq(p, q));
  }
  state.SetComplexityN(depth);
}
BENCHMARK(BM_WhitmanMemoDeep)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Complexity();

void BM_WhitmanIterativeDeep(benchmark::State& state) {
  ExprArena arena;
  int depth = static_cast<int>(state.range(0));
  ExprId p = DeepExpr(&arena, depth, 4, /*start_sum=*/false);
  ExprId q = DeepExpr(&arena, depth, 4, /*start_sum=*/true);
  WhitmanIterative iter(&arena);
  WhitmanIterativeStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iter.Leq(p, q, &stats));
  }
  state.counters["peak_stack"] = static_cast<double>(stats.peak_stack_depth);
  state.counters["tree_size"] = static_cast<double>(arena.TreeSize(p));
}
BENCHMARK(BM_WhitmanIterativeDeep)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_WhitmanMemoRandom(benchmark::State& state) {
  ExprArena arena;
  Rng rng = MakeBenchRng(99);
  int ops = static_cast<int>(state.range(0));
  std::vector<std::pair<ExprId, ExprId>> pairs;
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back(RandomExpr(&arena, &rng, 4, ops),
                       RandomExpr(&arena, &rng, 4, ops));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    WhitmanMemo memo(&arena);
    auto [p, q] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(memo.Eq(p, q));
  }
  state.SetComplexityN(ops);
}
BENCHMARK(BM_WhitmanMemoRandom)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity();

// Identity checking via the full ALG machinery with E = {} — strictly more
// general, measurably heavier: the ablation showing why the logspace
// fragment deserves its own decider.
void BM_IdentityViaAlg(benchmark::State& state) {
  ExprArena arena;
  Rng rng = MakeBenchRng(99);
  int ops = static_cast<int>(state.range(0));
  std::vector<std::pair<ExprId, ExprId>> pairs;
  for (int i = 0; i < 32; ++i) {
    pairs.emplace_back(RandomExpr(&arena, &rng, 4, ops),
                       RandomExpr(&arena, &rng, 4, ops));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto [p, q] = pairs[i++ % pairs.size()];
    PdImplicationEngine engine(&arena, {});
    benchmark::DoNotOptimize(engine.Implies(Pd::Eq(p, q)));
  }
  state.SetComplexityN(ops);
}
BENCHMARK(BM_IdentityViaAlg)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

}  // namespace

