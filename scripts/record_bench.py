#!/usr/bin/env python3
"""Run benchmark binaries and record a provenance-corrected JSON artifact.

google-benchmark's JSON context reports `library_build_type` for the
*benchmark library* itself, not for the code under test — on distros that
ship a debug libbenchmark, every artifact says "debug" even when the
library under test was compiled -O3 (the committed BENCH_implication.json
was bitten by exactly this). The bench binaries therefore embed their own
build type as `psem_build_type` (see bench/bench_main.cc); this script

  1. runs each binary with JSON output,
  2. refuses to record unless psem_build_type is a Release flavor
     (override with --allow-debug for harness debugging only),
  3. rewrites `library_build_type` from psem_build_type, preserving the
     original value as `benchmark_library_build_type`,
  4. with several binaries, merges their benchmark lists into one
     artifact (context from the first run, `executables` listing all of
     them) — duplicate benchmark names across binaries are an error,
     since compare_bench.py matches by name.

Usage:
  record_bench.py BINARY [BINARY...] -o OUT.json [--allow-debug]
                  [-- BENCH_ARGS...]

BENCH_ARGS after `--` are passed to every binary.

Note: the packaged google-benchmark predates the `Ns`-suffixed form of
--benchmark_min_time; pass plain doubles (e.g. --benchmark_min_time=0.1).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_one(binary: str, bench_args: list, allow_debug: bool) -> dict:
    """Runs one binary, returns its provenance-corrected JSON doc."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    cmd = [
        binary,
        f"--benchmark_out={raw_path}",
        "--benchmark_out_format=json",
    ] + bench_args
    env_note = {"PSEM_BENCH_ALLOW_DEBUG": "1"} if allow_debug else {}
    env = dict(os.environ, **env_note)
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        raise RuntimeError(f"{' '.join(cmd)} exited {proc.returncode}")

    with open(raw_path) as f:
        doc = json.load(f)
    context = doc.get("context", {})
    psem_build = context.get("psem_build_type", "unknown")
    if not psem_build.startswith("Rel") and not allow_debug:
        raise RuntimeError(
            f"refusing to record psem_build_type={psem_build!r} from "
            f"{binary}; rebuild with -DCMAKE_BUILD_TYPE=Release or pass "
            "--allow-debug"
        )

    # The provenance fix: library_build_type describes the code under
    # test; the benchmark library's own build flavor moves aside.
    if "library_build_type" in context:
        context["benchmark_library_build_type"] = context["library_build_type"]
    context["library_build_type"] = (
        "release" if psem_build.startswith("Rel") else psem_build.lower()
    )
    doc["context"] = context
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("binaries", nargs="+", help="benchmark binaries to run")
    parser.add_argument("-o", "--output", required=True, help="output JSON path")
    parser.add_argument(
        "--allow-debug",
        action="store_true",
        help="record even from a non-Release build (harness debugging only)",
    )
    argv = sys.argv[1:]
    bench_args = []
    if "--" in argv:
        split = argv.index("--")
        argv, bench_args = argv[:split], argv[split + 1 :]
    args = parser.parse_args(argv)

    docs = []
    for binary in args.binaries:
        try:
            docs.append(run_one(binary, bench_args, args.allow_debug))
        except RuntimeError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1

    merged = docs[0]
    merged["context"]["executables"] = args.binaries
    seen = {b["name"] for b in merged.get("benchmarks", [])}
    for doc in docs[1:]:
        for bench in doc.get("benchmarks", []):
            if bench["name"] in seen:
                print(
                    f"error: duplicate benchmark name {bench['name']!r} "
                    "across binaries — compare_bench.py matches by name",
                    file=sys.stderr,
                )
                return 1
            seen.add(bench["name"])
            merged.setdefault("benchmarks", []).append(bench)

    with open(args.output, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(
        f"recorded {len(merged.get('benchmarks', []))} benchmarks from "
        f"{len(args.binaries)} binar{'y' if len(args.binaries) == 1 else 'ies'}"
        f" -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
