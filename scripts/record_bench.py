#!/usr/bin/env python3
"""Run a benchmark binary and record a provenance-corrected JSON artifact.

google-benchmark's JSON context reports `library_build_type` for the
*benchmark library* itself, not for the code under test — on distros that
ship a debug libbenchmark, every artifact says "debug" even when the
library under test was compiled -O3 (the committed BENCH_implication.json
was bitten by exactly this). The bench binaries therefore embed their own
build type as `psem_build_type` (see bench/bench_main.cc); this script

  1. runs the binary with JSON output,
  2. refuses to record unless psem_build_type is a Release flavor
     (override with --allow-debug for harness debugging only),
  3. rewrites `library_build_type` from psem_build_type, preserving the
     original value as `benchmark_library_build_type`.

Usage:
  record_bench.py BINARY -o OUT.json [--allow-debug] [-- BENCH_ARGS...]

Note: the packaged google-benchmark predates the `Ns`-suffixed form of
--benchmark_min_time; pass plain doubles (e.g. --benchmark_min_time=0.1).
"""

import argparse
import json
import subprocess
import sys
import tempfile


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("binary", help="benchmark binary to run")
    parser.add_argument("-o", "--output", required=True, help="output JSON path")
    parser.add_argument(
        "--allow-debug",
        action="store_true",
        help="record even from a non-Release build (harness debugging only)",
    )
    argv = sys.argv[1:]
    bench_args = []
    if "--" in argv:
        split = argv.index("--")
        argv, bench_args = argv[:split], argv[split + 1 :]
    args = parser.parse_args(argv)
    args.bench_args = bench_args

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    cmd = [
        args.binary,
        f"--benchmark_out={raw_path}",
        "--benchmark_out_format=json",
    ] + args.bench_args
    env_note = {"PSEM_BENCH_ALLOW_DEBUG": "1"} if args.allow_debug else {}
    import os

    env = dict(os.environ, **env_note)
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}", file=sys.stderr)
        return proc.returncode

    with open(raw_path) as f:
        doc = json.load(f)
    context = doc.get("context", {})
    psem_build = context.get("psem_build_type", "unknown")
    if not psem_build.startswith("Rel") and not args.allow_debug:
        print(
            f"error: refusing to record psem_build_type={psem_build!r}; "
            "rebuild with -DCMAKE_BUILD_TYPE=Release or pass --allow-debug",
            file=sys.stderr,
        )
        return 1

    # The provenance fix: library_build_type describes the code under
    # test; the benchmark library's own build flavor moves aside.
    if "library_build_type" in context:
        context["benchmark_library_build_type"] = context["library_build_type"]
    context["library_build_type"] = (
        "release" if psem_build.startswith("Rel") else psem_build.lower()
    )
    doc["context"] = context

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"recorded {len(doc.get('benchmarks', []))} benchmarks -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
