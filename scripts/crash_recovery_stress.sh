#!/usr/bin/env bash
# Kill -9 crash-recovery stress for the psem_cli durability subsystem
# (--snapshot-dir). Each round:
#
#   1. generates a seeded PD stream + implication query battery,
#   2. computes reference verdicts with a durability-free run,
#   3. feeds the stream slowly to a durable CLI and SIGKILLs it mid-stream,
#   4. restarts against the same snapshot dir, re-feeds the full stream
#      (journal replay + AddPd dedupe make this idempotent) and runs the
#      battery,
#   5. fails unless the battery verdicts are byte-identical to the
#      reference AND recovery reports at least every constraint whose
#      acknowledgement reached stdout before the kill.
#
# The kill is a real SIGKILL at an arbitrary instant — no fail points —
# so this exercises the same torn-write / torn-journal-tail surface as
# the fault-injected unit tests, but end to end through the filesystem.
#
# Usage: crash_recovery_stress.sh <path-to-psem_cli> [rounds]

set -u

CLI=${1:?usage: crash_recovery_stress.sh <path-to-psem_cli> [rounds]}
ROUNDS=${2:-10}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

gen_pds() {  # $1 = round seed
  awk -v seed="$1" 'BEGIN {
    srand(seed)
    n = 24
    for (i = 0; i < n; i++) {
      r = int(rand() * 3)
      j = (i + 1) % n
      k = int(rand() * n)
      if (r == 0)      printf "pd A%d <= A%d\n", i, j
      else if (r == 1) printf "pd A%d*A%d <= A%d\n", i, k, j
      else             printf "pd A%d <= A%d+A%d\n", i, j, k
    }
  }'
}

gen_queries() {
  awk 'BEGIN {
    for (i = 0; i < 8; i++) {
      printf "implies A%d <= A%d\n", i, (i * 5 + 3) % 24
      printf "implies A%d*A%d <= A%d\n", i, (i + 7) % 24, (i * 3 + 1) % 24
    }
  }'
}

fail=0
for round in $(seq 1 "$ROUNDS"); do
  dir="$WORK/r$round"
  mkdir -p "$dir"
  gen_pds "$round" > "$dir/pds.txt"
  gen_queries > "$dir/queries.txt"

  # Reference: the same stream, durability disabled, fresh engine.
  cat "$dir/pds.txt" "$dir/queries.txt" | "$CLI" \
    | grep -E '^(implied|not implied)$' > "$dir/expected.txt"

  # Crash run: slow feed, SIGKILL at a seeded random instant mid-stream.
  RANDOM=$round
  ( while IFS= read -r line; do printf '%s\n' "$line"; sleep 0.01; done \
      < "$dir/pds.txt"; sleep 5 ) \
    | "$CLI" --snapshot-dir "$dir/state" --checkpoint-every 3 \
      > "$dir/crash_out.txt" 2> "$dir/crash_err.txt" &
  pid=$!
  sleep "0.$(printf '%02d' $((RANDOM % 30)))"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null

  # Acks that reached stdout are a lower bound on what was journaled
  # (the journal fsync happens before the ack is printed).
  acked=$(grep -c '^E' "$dir/crash_out.txt" || true)

  # Recovery + idempotent re-feed + battery.
  cat "$dir/pds.txt" "$dir/queries.txt" | "$CLI" \
      --snapshot-dir "$dir/state" --checkpoint-every 3 \
      > "$dir/recovered_out.txt" 2> "$dir/recovered_err.txt"
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "round $round: FAIL — recovery run exited $rc" >&2
    cat "$dir/recovered_err.txt" >&2
    fail=1; continue
  fi

  tier=$(sed -n 's/^recovery: tier=\([a-z-]*\) .*/\1/p' \
           "$dir/recovered_err.txt")
  recovered=$(sed -n 's/^recovery: tier=[a-z-]* constraints=\([0-9]*\) .*/\1/p' \
                "$dir/recovered_err.txt")
  if [ -z "$recovered" ]; then
    echo "round $round: FAIL — no recovery summary line" >&2
    cat "$dir/recovered_err.txt" >&2
    fail=1; continue
  fi
  if [ "$recovered" -lt "$acked" ]; then
    echo "round $round: FAIL — $acked constraints acknowledged before" \
         "kill -9 but only $recovered recovered" >&2
    fail=1; continue
  fi

  grep -E '^(implied|not implied)$' "$dir/recovered_out.txt" \
    > "$dir/actual.txt"
  if ! cmp -s "$dir/expected.txt" "$dir/actual.txt"; then
    echo "round $round: FAIL — verdicts diverge after recovery" >&2
    diff "$dir/expected.txt" "$dir/actual.txt" >&2 || true
    fail=1; continue
  fi
  echo "round $round: ok (tier=${tier:-?}, acked=$acked, recovered=$recovered)"
done

exit "$fail"
