#!/usr/bin/env python3
"""Compare two benchmark JSON artifacts and fail on regression.

Matches benchmarks by name between a committed baseline and a fresh run,
compares cpu_time (normalized to each entry's time_unit), and exits 1 if
any shared benchmark regressed by more than the threshold (default 25%).
Benchmarks present on only one side are reported but never fatal, so
adding or retiring benchmarks does not break CI.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) and complexity fits
        # ("_BigO"/"_RMS"): only raw iterations are comparable run-to-run.
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name.endswith("_BigO") or name.endswith("_RMS"):
            continue
        if "cpu_time" not in b:
            continue
        times[name] = b["cpu_time"] * _UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
    return times


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional slowdown that fails the comparison (default 0.25)",
    )
    args = parser.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)
    shared = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    regressions = []
    for name in shared:
        if base[name] <= 0:
            continue
        ratio = cur[name] / base[name]
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:60s} {base[name]:14.1f} -> {cur[name]:14.1f} ns "
              f"({ratio:5.2f}x){marker}")
    for name in only_base:
        print(f"{name:60s} only in baseline (retired?)")
    for name in only_cur:
        print(f"{name:60s} only in current (new)")

    if not shared:
        print("error: no shared benchmarks to compare", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nOK: {len(shared)} shared benchmarks within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
